#include "analysis/charts.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace sciera::analysis {
namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@'};

}  // namespace

Series cdf_series(std::string name, const std::vector<double>& sorted_samples,
                  std::size_t max_points) {
  Series series;
  series.name = std::move(name);
  const std::size_t n = sorted_samples.size();
  if (n == 0) return series;
  const std::size_t step = std::max<std::size_t>(1, n / max_points);
  for (std::size_t i = 0; i < n; i += step) {
    series.points.emplace_back(sorted_samples[i],
                               static_cast<double>(i + 1) /
                                   static_cast<double>(n));
  }
  series.points.emplace_back(sorted_samples.back(), 1.0);
  return series;
}

std::string render_chart(const std::vector<Series>& series,
                         std::string x_label, std::string y_label, int width,
                         int height) {
  double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      min_x = std::min(min_x, x);
      max_x = std::max(max_x, x);
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
    }
  }
  if (min_x > max_x) return "(no data)\n";
  if (max_x == min_x) max_x = min_x + 1;
  if (max_y == min_y) max_y = min_y + 1;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof kGlyphs];
    for (const auto& [x, y] : series[si].points) {
      const int col = static_cast<int>((x - min_x) / (max_x - min_x) *
                                       (width - 1));
      const int row = static_cast<int>((y - min_y) / (max_y - min_y) *
                                       (height - 1));
      grid[static_cast<std::size_t>(height - 1 - row)]
          [static_cast<std::size_t>(col)] = glyph;
    }
  }

  std::string out;
  out += strformat("  %s\n", y_label.c_str());
  for (int r = 0; r < height; ++r) {
    const double y_val =
        max_y - (max_y - min_y) * static_cast<double>(r) / (height - 1);
    out += strformat("%8.2f |%s\n", y_val, grid[static_cast<std::size_t>(r)].c_str());
  }
  out += "         +" + std::string(static_cast<std::size_t>(width), '-') + "\n";
  out += strformat("          %-10.2f%*s%.2f   (%s)\n", min_x, width - 18, "",
                   max_x, x_label.c_str());
  out += "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out += strformat("  [%c] %s", kGlyphs[si % sizeof kGlyphs],
                     series[si].name.c_str());
  }
  out += "\n";
  return out;
}

std::string render_matrix(const std::vector<IsdAs>& ases,
                          const std::vector<std::vector<int>>& values,
                          std::string title) {
  std::string out = title + "\n";
  out += strformat("%12s", "src\\dst");
  for (const auto& ia : ases) out += strformat(" %9s", ia.to_string().c_str());
  out += "\n";
  for (std::size_t i = 0; i < ases.size(); ++i) {
    out += strformat("%12s", ases[i].to_string().c_str());
    for (std::size_t j = 0; j < ases.size(); ++j) {
      if (values[i][j] < 0) {
        out += strformat(" %9s", "-");
      } else {
        out += strformat(" %9d", values[i][j]);
      }
    }
    out += "\n";
  }
  return out;
}

std::string render_boxes(const std::vector<BoxGroup>& groups,
                         std::string unit) {
  std::string out;
  out += strformat("%-18s %-10s %8s %8s %8s %8s %8s  (%s)\n", "group", "series",
                   "min", "p25", "median", "p75", "max", unit.c_str());
  for (const auto& group : groups) {
    for (const auto& [name, cdf] : group.boxes) {
      out += strformat("%-18s %-10s %8.1f %8.1f %8.1f %8.1f %8.1f\n",
                       group.group.c_str(), name.c_str(), cdf.min(),
                       cdf.percentile(0.25), cdf.median(), cdf.percentile(0.75),
                       cdf.max());
    }
  }
  return out;
}

}  // namespace sciera::analysis
