// Figure 10c: the link-failure resilience simulation. "In 100 simulation
// runs, we randomly remove between 0% and 100% of the links (one link per
// step) and calculate how many AS pairs still have connectivity",
// comparing SCION's multipath (any surviving route; the control plane
// rediscovers paths) with a single-path alternative pinned to the
// precomputed shortest path.
#pragma once

#include <vector>

#include "common/rng.h"
#include "topology/topology.h"

namespace sciera::analysis {

struct ResiliencePoint {
  double fraction_links_removed = 0;
  double multipath_connectivity = 0;   // fraction of AS pairs connected
  double singlepath_connectivity = 0;
};

struct ResilienceOptions {
  int runs = 100;
  std::uint64_t seed = 7;
};

[[nodiscard]] std::vector<ResiliencePoint> link_failure_resilience(
    const topology::Topology& topo, const ResilienceOptions& options = {});

}  // namespace sciera::analysis
