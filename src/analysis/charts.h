// Terminal renderers for the reproduction harness: CDF line charts,
// heatmap matrices (Figures 8/9), time series (Figure 7), and box
// summaries (Figure 4). Benches print these so the figures can be eyeballed
// straight from the console, alongside the exact numbers.
#pragma once

#include <string>
#include <vector>

#include "analysis/stats.h"

namespace sciera::analysis {

struct Series {
  std::string name;
  // (x, y) points, x ascending.
  std::vector<std::pair<double, double>> points;
};

// ASCII line chart with multiple series (distinct glyphs per series).
[[nodiscard]] std::string render_chart(const std::vector<Series>& series,
                                       std::string x_label,
                                       std::string y_label, int width = 72,
                                       int height = 20);

// CDF helper: samples (sorted) -> a Series with y in [0, 1].
[[nodiscard]] Series cdf_series(std::string name,
                                const std::vector<double>& sorted_samples,
                                std::size_t max_points = 200);

// Matrix heatmap (Figures 8/9 style): rows labelled by ISD-AS.
[[nodiscard]] std::string render_matrix(
    const std::vector<IsdAs>& ases,
    const std::vector<std::vector<int>>& values, std::string title);

// Box-style summary for grouped distributions (Figure 4): per group, the
// min/p25/median/p75/max of each labelled distribution.
struct BoxGroup {
  std::string group;
  std::vector<std::pair<std::string, Cdf>> boxes;
};
[[nodiscard]] std::string render_boxes(const std::vector<BoxGroup>& groups,
                                       std::string unit);

}  // namespace sciera::analysis
