#include "analysis/resilience.h"

#include <algorithm>
#include <numeric>
#include <queue>

namespace sciera::analysis {
namespace {

// Union-find over AS indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

// Dijkstra shortest path (by delay) returning the link sequence.
std::vector<topology::LinkId> shortest_path(const topology::Topology& topo,
                                            std::size_t src_idx,
                                            std::size_t dst_idx) {
  const auto& ases = topo.ases();
  const std::size_t n = ases.size();
  std::vector<Duration> dist(n, INT64_MAX);
  std::vector<std::pair<std::size_t, topology::LinkId>> prev(
      n, {SIZE_MAX, 0});
  std::unordered_map<IsdAs, std::size_t> index;
  for (std::size_t i = 0; i < n; ++i) index[ases[i].ia] = i;

  using Item = std::pair<Duration, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  dist[src_idx] = 0;
  queue.push({0, src_idx});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    if (u == dst_idx) break;
    for (topology::LinkId id : topo.links_of(ases[u].ia)) {
      const auto* link = topo.find_link(id);
      const std::size_t v = index[link->other(ases[u].ia)];
      const Duration nd = d + link->delay;
      if (nd < dist[v]) {
        dist[v] = nd;
        prev[v] = {u, id};
        queue.push({nd, v});
      }
    }
  }
  std::vector<topology::LinkId> links;
  std::size_t cur = dst_idx;
  while (cur != src_idx && prev[cur].first != SIZE_MAX) {
    links.push_back(prev[cur].second);
    cur = prev[cur].first;
  }
  if (cur != src_idx) links.clear();  // unreachable
  return links;
}

}  // namespace

std::vector<ResiliencePoint> link_failure_resilience(
    const topology::Topology& topo, const ResilienceOptions& options) {
  const std::size_t n_links = topo.links().size();
  const std::size_t n_ases = topo.ases().size();
  const std::size_t n_pairs = n_ases * (n_ases - 1) / 2;

  // Precompute each pair's pinned shortest path.
  std::vector<std::vector<topology::LinkId>> pinned;
  pinned.reserve(n_pairs);
  for (std::size_t i = 0; i < n_ases; ++i) {
    for (std::size_t j = i + 1; j < n_ases; ++j) {
      pinned.push_back(shortest_path(topo, i, j));
    }
  }

  std::unordered_map<IsdAs, std::size_t> index;
  for (std::size_t i = 0; i < n_ases; ++i) index[topo.ases()[i].ia] = i;

  // Accumulate connectivity per removal step across runs.
  std::vector<double> multi_acc(n_links + 1, 0.0);
  std::vector<double> single_acc(n_links + 1, 0.0);

  Rng rng{options.seed, "resilience"};
  for (int run = 0; run < options.runs; ++run) {
    // Random removal order.
    std::vector<std::size_t> order(n_links);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = n_links; i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    std::vector<bool> up(n_links, true);
    for (std::size_t step = 0; step <= n_links; ++step) {
      if (step > 0) up[order[step - 1]] = false;

      // Multipath: graph connectivity over surviving links (the control
      // plane re-beacons and finds any remaining route).
      UnionFind uf{n_ases};
      for (const auto& link : topo.links()) {
        if (up[link.id]) uf.unite(index[link.a], index[link.b]);
      }
      std::size_t multi_ok = 0;
      std::size_t pinned_idx = 0;
      std::size_t single_ok = 0;
      for (std::size_t i = 0; i < n_ases; ++i) {
        for (std::size_t j = i + 1; j < n_ases; ++j, ++pinned_idx) {
          if (uf.find(i) == uf.find(j)) ++multi_ok;
          const auto& path = pinned[pinned_idx];
          if (!path.empty() &&
              std::all_of(path.begin(), path.end(),
                          [&](topology::LinkId id) { return up[id]; })) {
            ++single_ok;
          }
        }
      }
      multi_acc[step] += static_cast<double>(multi_ok);
      single_acc[step] += static_cast<double>(single_ok);
    }
  }

  std::vector<ResiliencePoint> points;
  for (std::size_t step = 0; step <= n_links; ++step) {
    ResiliencePoint point;
    point.fraction_links_removed =
        static_cast<double>(step) / static_cast<double>(n_links);
    point.multipath_connectivity =
        multi_acc[step] / (static_cast<double>(options.runs) *
                           static_cast<double>(n_pairs));
    point.singlepath_connectivity =
        single_acc[step] / (static_cast<double>(options.runs) *
                            static_cast<double>(n_pairs));
    points.push_back(point);
  }
  return points;
}

}  // namespace sciera::analysis
