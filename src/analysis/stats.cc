#include "analysis/stats.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace sciera::analysis {

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end());
}

double Cdf::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  const double clamped = std::clamp(p, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

double Cdf::min() const { return samples_.empty() ? 0.0 : samples_.front(); }
double Cdf::max() const { return samples_.empty() ? 0.0 : samples_.back(); }

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Cdf::fraction_below(double x) const {
  if (samples_.empty()) return 0.0;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

RttDistributions rtt_distributions(const measure::CampaignResult& result) {
  std::vector<double> scion, ip;
  for (const auto& record : result.intervals) {
    // The paper excludes intervals where the ICMP tool stalled; our
    // equivalent is requiring both sides to have samples in the interval.
    if (record.scion_min_rtt && record.scion_ok > 0) {
      scion.push_back(to_ms(*record.scion_min_rtt));
    }
    if (record.ip_min_rtt && record.ip_ok > 0) {
      ip.push_back(to_ms(*record.ip_min_rtt));
    }
  }
  return RttDistributions{Cdf{std::move(scion)}, Cdf{std::move(ip)}};
}

std::vector<PairRatio> pair_ratios(const measure::CampaignResult& result) {
  struct Acc {
    double scion_sum = 0;
    double ip_sum = 0;
    std::size_t scion_n = 0;
    std::size_t ip_n = 0;
  };
  std::map<std::pair<std::uint64_t, std::uint64_t>, Acc> acc;
  for (const auto& record : result.intervals) {
    Acc& entry = acc[{record.src.packed(), record.dst.packed()}];
    if (record.scion_min_rtt) {
      entry.scion_sum += to_ms(*record.scion_min_rtt);
      ++entry.scion_n;
    }
    if (record.ip_min_rtt) {
      entry.ip_sum += to_ms(*record.ip_min_rtt);
      ++entry.ip_n;
    }
  }
  std::vector<PairRatio> out;
  for (const auto& [key, entry] : acc) {
    if (entry.scion_n == 0 || entry.ip_n == 0) continue;
    PairRatio ratio;
    ratio.src = IsdAs::from_packed(key.first);
    ratio.dst = IsdAs::from_packed(key.second);
    ratio.mean_scion_ms = entry.scion_sum / static_cast<double>(entry.scion_n);
    ratio.mean_ip_ms = entry.ip_sum / static_cast<double>(entry.ip_n);
    ratio.ratio = ratio.mean_scion_ms / ratio.mean_ip_ms;
    out.push_back(ratio);
  }
  std::sort(out.begin(), out.end(),
            [](const PairRatio& x, const PairRatio& y) {
              return x.ratio < y.ratio;
            });
  return out;
}

std::vector<RatioPoint> ratio_timeline(const measure::CampaignResult& result,
                                       Duration bucket) {
  // Mean of per-record ratios per bucket, so every AS pair contributes
  // equally regardless of its absolute RTT (the paper plots the ratio for
  // "all AS pairs over time").
  struct Acc {
    double ratio_sum = 0;
    std::size_t n = 0;
  };
  std::map<SimTime, Acc> buckets;
  for (const auto& record : result.intervals) {
    if (!record.scion_min_rtt || !record.ip_min_rtt) continue;
    if (*record.ip_min_rtt <= 0) continue;
    Acc& entry = buckets[record.start / bucket];
    entry.ratio_sum += static_cast<double>(*record.scion_min_rtt) /
                       static_cast<double>(*record.ip_min_rtt);
    ++entry.n;
  }
  std::vector<RatioPoint> out;
  for (const auto& [index, entry] : buckets) {
    if (entry.n == 0) continue;
    RatioPoint point;
    point.day = static_cast<double>(index) *
                (static_cast<double>(bucket) / static_cast<double>(kDay));
    point.ratio = entry.ratio_sum / static_cast<double>(entry.n);
    out.push_back(point);
  }
  return out;
}

PathMatrix path_matrices(const measure::CampaignResult& result,
                         const std::vector<IsdAs>& ases) {
  PathMatrix matrix;
  matrix.ases = ases;
  const std::size_t n = ases.size();
  matrix.max_paths.assign(n, std::vector<int>(n, -1));
  matrix.median_deviation.assign(n, std::vector<int>(n, -1));

  auto index_of = [&](IsdAs ia) -> int {
    for (std::size_t i = 0; i < n; ++i) {
      if (ases[i] == ia) return static_cast<int>(i);
    }
    return -1;
  };

  std::map<std::pair<int, int>, std::vector<int>> counts;
  for (const auto& probe : result.probes) {
    const int i = index_of(probe.src);
    const int j = index_of(probe.dst);
    if (i < 0 || j < 0 || i == j) continue;
    counts[{i, j}].push_back(static_cast<int>(probe.active_paths));
  }
  for (auto& [key, values] : counts) {
    std::sort(values.begin(), values.end());
    const int maximum = values.back();
    const int median = values[values.size() / 2];
    matrix.max_paths[static_cast<std::size_t>(key.first)]
                    [static_cast<std::size_t>(key.second)] = maximum;
    matrix.median_deviation[static_cast<std::size_t>(key.first)]
                           [static_cast<std::size_t>(key.second)] =
        maximum - median;
  }
  // Rows for ASes that are not vantage points are mirrored from the
  // reverse direction (SCION path sets are symmetric per segment pair).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (matrix.max_paths[i][j] < 0 && matrix.max_paths[j][i] >= 0) {
        matrix.max_paths[i][j] = matrix.max_paths[j][i];
        matrix.median_deviation[i][j] = matrix.median_deviation[j][i];
      }
    }
  }
  return matrix;
}

std::vector<double> latency_inflation(const measure::CampaignResult& result) {
  std::vector<double> out;
  for (const auto& pair : result.pair_paths) {
    if (pair.paths.size() < 2) continue;
    std::vector<Duration> rtts;
    rtts.reserve(pair.paths.size());
    for (const auto& path : pair.paths) rtts.push_back(path.static_rtt);
    std::sort(rtts.begin(), rtts.end());
    if (rtts[0] <= 0) continue;
    out.push_back(static_cast<double>(rtts[1]) / static_cast<double>(rtts[0]));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> pairwise_disjointness(
    const measure::CampaignResult& result, std::size_t max_paths_per_pair,
    const std::vector<IsdAs>& restrict_to) {
  std::vector<double> out;
  const auto allowed = [&](IsdAs ia) {
    return restrict_to.empty() ||
           std::find(restrict_to.begin(), restrict_to.end(), ia) !=
               restrict_to.end();
  };
  for (const auto& pair : result.pair_paths) {
    if (!allowed(pair.src) || !allowed(pair.dst)) continue;
    // One representative per distinct AS-level route (parallel-channel
    // variants are near-duplicates that would otherwise dominate the
    // quadratic), then a uniform stride sample across those routes.
    std::vector<const controlplane::Path*> routes;
    std::set<std::string> seen_sequences;
    for (const auto& path : pair.paths) {
      std::string key;
      for (IsdAs ia : path.as_sequence) key += ia.to_string() + ">";
      if (seen_sequences.insert(key).second) routes.push_back(&path);
    }
    std::vector<const controlplane::Path*> sample;
    const std::size_t n = routes.size();
    if (n == 0) continue;
    const std::size_t stride =
        std::max<std::size_t>(1, n / max_paths_per_pair);
    for (std::size_t i = 0; i < n && sample.size() < max_paths_per_pair;
         i += stride) {
      sample.push_back(routes[i]);
    }
    for (std::size_t i = 0; i < sample.size(); ++i) {
      for (std::size_t j = i + 1; j < sample.size(); ++j) {
        out.push_back(controlplane::path_disjointness(*sample[i], *sample[j]));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sciera::analysis
