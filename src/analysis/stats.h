// Statistics over campaign data: CDFs, percentiles, and the per-figure
// aggregations of Section 5 (RTT distributions, per-pair RTT ratios,
// ratio-over-time series, active-path matrices, latency inflation,
// pairwise disjointness).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "measure/campaign.h"

namespace sciera::analysis {

class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  // p in [0,1]; nearest-rank percentile.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(0.5); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  // Fraction of samples <= x.
  [[nodiscard]] double fraction_below(double x) const;
  [[nodiscard]] const std::vector<double>& sorted_samples() const {
    return samples_;
  }

 private:
  std::vector<double> samples_;  // sorted
};

// --- Figure 5: RTT distributions -------------------------------------------

struct RttDistributions {
  Cdf scion_ms;
  Cdf ip_ms;
};
[[nodiscard]] RttDistributions rtt_distributions(
    const measure::CampaignResult& result);

// --- Figure 6: per-pair mean RTT ratio ---------------------------------------

struct PairRatio {
  IsdAs src;
  IsdAs dst;
  double mean_scion_ms = 0;
  double mean_ip_ms = 0;
  double ratio = 0;
};
[[nodiscard]] std::vector<PairRatio> pair_ratios(
    const measure::CampaignResult& result);

// --- Figure 7: ratio over time -------------------------------------------------

struct RatioPoint {
  double day = 0;
  double ratio = 0;  // mean over pairs of scion/ip for the bucket
};
[[nodiscard]] std::vector<RatioPoint> ratio_timeline(
    const measure::CampaignResult& result, Duration bucket = 12 * kHour);

// --- Figures 8/9: active-path matrices ------------------------------------------

struct PathMatrix {
  std::vector<IsdAs> ases;  // row/column order
  // [src][dst]; -1 where src == dst.
  std::vector<std::vector<int>> max_paths;
  std::vector<std::vector<int>> median_deviation;
};
[[nodiscard]] PathMatrix path_matrices(const measure::CampaignResult& result,
                                       const std::vector<IsdAs>& ases);

// --- Figure 10a: latency inflation -------------------------------------------------

// d2/d1 per AS pair: second-lowest over lowest static path RTT.
[[nodiscard]] std::vector<double> latency_inflation(
    const measure::CampaignResult& result);

// --- Figure 10b: pairwise path disjointness -------------------------------------------

// Disjointness over all path combinations of every pair (bounded per pair
// to keep the quadratic tractable). When `restrict_to` is non-empty, only
// pairs whose endpoints are both in the set are considered (the paper
// computes Section 5.5's metrics over the Figure 8 measurement matrix).
[[nodiscard]] std::vector<double> pairwise_disjointness(
    const measure::CampaignResult& result, std::size_t max_paths_per_pair = 40,
    const std::vector<IsdAs>& restrict_to = {});

}  // namespace sciera::analysis
