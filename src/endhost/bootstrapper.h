// The bootstrapper (Sections 4.1.2/4.1.3): discovers the bootstrapping
// server via the best available hint mechanism, fetches the signed
// topology and TRCs, verifies them, and hands the daemon (or the
// application library, in standalone mode) a ready-to-use configuration.
#pragma once

#include <optional>

#include "cppki/trc.h"
#include "endhost/bootstrap_server.h"
#include "endhost/hints.h"

namespace sciera::endhost {

struct BootstrapTimings {
  HintMechanism mechanism_used = HintMechanism::kDhcpVivo;
  Duration hint_retrieval = 0;
  Duration config_retrieval = 0;
  [[nodiscard]] Duration total() const {
    return hint_retrieval + config_retrieval;
  }
};

struct BootstrapResult {
  topology::Topology local_topology;  // AS-local slice
  IsdAs local_ia;
  cppki::TrustStore trust_store;
  BootstrapTimings timings;
};

class Bootstrapper {
 public:
  struct Config {
    // Preference order mirrors Appendix A's discussion: DHCP first (most
    // deployed), then DNS family, multicast last.
    std::vector<HintMechanism> preference = all_hint_mechanisms();
    // TOFU anchoring of the first TRC when no out-of-band TRC is present
    // (the TLS-or-out-of-band caveat of Section 4.1.2).
    bool trust_on_first_use = true;
  };

  Bootstrapper(const NetworkEnvironment& env, OsProfile os, Config config);
  Bootstrapper(const NetworkEnvironment& env, OsProfile os)
      : Bootstrapper(env, std::move(os), Config{}) {}

  // Runs the full bootstrap against a server. An out-of-band TRC, if
  // provided, is used as the anchor instead of TOFU.
  [[nodiscard]] Result<BootstrapResult> run(
      const BootstrapServer& server, Rng& rng, SimTime now,
      const cppki::Trc* out_of_band_trc = nullptr);

  // The hint-discovery step alone (for Figure 4's breakdown).
  [[nodiscard]] Result<std::pair<HintMechanism, Duration>> discover_hint(
      Rng& rng) const;

 private:
  NetworkEnvironment env_;
  OsProfile os_;
  Config config_;
};

}  // namespace sciera::endhost
