#include "endhost/daemon.h"

#include <memory>
#include <utility>

#include "obs/flight_recorder.h"

namespace sciera::endhost {

const char* path_source_name(PathSource source) {
  switch (source) {
    case PathSource::kFreshCache: return "fresh_cache";
    case PathSource::kFetched: return "fetched";
    case PathSource::kStaleCache: return "stale_cache";
    case PathSource::kUnavailable: return "unavailable";
  }
  return "unknown";
}

Daemon::Daemon(controlplane::ScionNetwork& net, IsdAs ia, Config config)
    : net_(net), ia_(ia), config_(config),
      services_(net.control_service_set(ia)),
      rng_(net.options().seed, "daemon-" + ia.to_string()) {
  auto& registry = obs::MetricsRegistry::global();
  const obs::Labels base{
      {"daemon", registry.instance_label("daemon", ia.to_string())}};
  lookups_ = &registry.counter("sciera_daemon_lookups_total", base);
  const auto cache = [&](const char* result) {
    obs::Labels labels = base;
    labels.emplace_back("result", result);
    return &registry.counter("sciera_daemon_cache_total", labels);
  };
  cache_hits_ = cache("hit");
  cache_misses_ = cache("miss");
  const auto degraded = [&](const char* result) {
    obs::Labels labels = base;
    labels.emplace_back("result", result);
    return &registry.counter("sciera_daemon_degraded_total", labels);
  };
  stale_served_ = degraded("stale");
  degraded_empty_ = degraded("empty");
  lookup_timeouts_ =
      &registry.counter("sciera_daemon_lookup_timeouts_total", base);
  lookup_retries_ =
      &registry.counter("sciera_daemon_lookup_retries_total", base);
  breaker_trips_ =
      &registry.counter("sciera_daemon_breaker_trips_total", base);
  quarantine_size_ = &registry.gauge("sciera_daemon_quarantined", base);
}

std::vector<controlplane::Path> Daemon::filter_alive(
    std::vector<controlplane::Path> paths) const {
  std::erase_if(paths, [this](const controlplane::Path& path) {
    return !path_alive(path);
  });
  return paths;
}

void Daemon::prune_quarantine() {
  const SimTime now = net_.sim().now();
  std::erase_if(down_until_,
                [now](const auto& entry) { return now >= entry.second; });
  quarantine_size_->set(static_cast<std::int64_t>(down_until_.size()));
}

const Daemon::CacheEntry* Daemon::begin_lookup(IsdAs dst) {
  prune_quarantine();
  lookups_->inc();
  const auto it = cache_.find(dst);
  // Fresh iff age < ttl: an entry aged exactly path_cache_ttl is stale.
  const bool hit =
      it != cache_.end() &&
      net_.sim().now() - it->second.fetched_at < config_.path_cache_ttl;
  obs::FlightRecorder::global().record(
      obs::TraceType::kPathLookup, net_.sim().now(),
      net_.sim().executed_events(), "daemon-" + ia_.to_string(),
      dst.to_string() + (hit ? " hit" : " miss"));
  if (!hit) {
    cache_misses_->inc();
    return nullptr;
  }
  cache_hits_->inc();
  return &it->second;
}

std::size_t Daemon::replica_count() const {
  return config_.resilience.enabled ? services_->size() : 1;
}

CircuitBreaker& Daemon::breaker_for(IsdAs dst, std::size_t replica) {
  auto it = breakers_.find(dst);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(dst,
                      std::vector<CircuitBreaker>(
                          replica_count(),
                          CircuitBreaker{config_.resilience.breaker}))
             .first;
  }
  return it->second[replica];
}

void Daemon::record_fetch_failure(IsdAs dst, std::size_t replica) {
  if (!config_.resilience.enabled) return;
  CircuitBreaker& breaker = breaker_for(dst, replica);
  const std::uint64_t opened_before = breaker.times_opened();
  breaker.record_failure(net_.sim().now());
  if (breaker.times_opened() > opened_before) breaker_trips_->inc();
}

PathLookup Daemon::degraded(IsdAs dst) {
  const auto it = cache_.find(dst);
  bool have_stale = it != cache_.end() && !it->second.paths.empty();
  // Age cap: an entry aged >= max_stale_age is too old to trust — the
  // honest answer at that point is kUnavailable, not ancient paths.
  const Duration max_age = config_.resilience.max_stale_age;
  if (have_stale && max_age > 0 &&
      net_.sim().now() - it->second.fetched_at >= max_age) {
    have_stale = false;
  }
  const bool serve_stale = config_.resilience.enabled &&
                           config_.resilience.serve_stale && have_stale;
  if (serve_stale) {
    stale_served_->inc();
    if (first_stale_at_ < 0) first_stale_at_ = net_.sim().now();
    last_stale_at_ = net_.sim().now();
  } else {
    degraded_empty_->inc();
  }
  obs::FlightRecorder::global().record(
      obs::TraceType::kLookupDegraded, net_.sim().now(),
      net_.sim().executed_events(), "daemon-" + ia_.to_string(),
      dst.to_string() + (serve_stale ? " stale" : " empty"));
  if (serve_stale) {
    return PathLookup{filter_alive(it->second.paths),
                      PathSource::kStaleCache, true};
  }
  return PathLookup{{}, PathSource::kUnavailable, false};
}

std::vector<controlplane::Path> Daemon::paths(IsdAs dst) {
  return paths_detailed(dst).paths;
}

PathLookup Daemon::paths_detailed(IsdAs dst) {
  if (const CacheEntry* entry = begin_lookup(dst)) {
    return PathLookup{filter_alive(entry->paths), PathSource::kFreshCache,
                      false};
  }
  // Replica failover in deterministic index order: skip replicas whose
  // breaker is open (fail fast, no failure charged), charge a failure to
  // a dead replica and move on, fetch from the first live one. A failed
  // fetch is never cached and never overwrites a stale entry.
  const SimTime now = net_.sim().now();
  for (std::size_t r = 0; r < replica_count(); ++r) {
    if (config_.resilience.enabled && !breaker_for(dst, r).allow(now)) {
      continue;
    }
    controlplane::ControlService* replica = services_->replica(r);
    if (!replica->available()) {
      record_fetch_failure(dst, r);
      continue;
    }
    CacheEntry entry;
    entry.paths = replica->lookup_paths_now(dst);
    entry.fetched_at = now;
    if (config_.resilience.enabled) breaker_for(dst, r).record_success();
    const auto it = cache_.insert_or_assign(dst, std::move(entry)).first;
    return PathLookup{filter_alive(it->second.paths), PathSource::kFetched,
                      false};
  }
  return degraded(dst);
}

void Daemon::paths_async(
    IsdAs dst, std::function<void(std::vector<controlplane::Path>)> cb) {
  paths_async_detailed(dst, [cb = std::move(cb)](PathLookup lookup) {
    cb(std::move(lookup.paths));
  });
}

void Daemon::paths_async_detailed(IsdAs dst,
                                  std::function<void(PathLookup)> cb) {
  if (const CacheEntry* entry = begin_lookup(dst)) {
    // Answer from cache on the next tick so the callback is always
    // asynchronous (callers cannot observe a reentrant answer).
    PathLookup result{filter_alive(entry->paths), PathSource::kFreshCache,
                      false};
    net_.sim().schedule_after(
        simnet::Domain::current(), 0,
        [cb = std::move(cb), result = std::move(result)] { cb(result); });
    return;
  }
  auto lookup = std::make_shared<AsyncLookup>();
  lookup->dst = dst;
  lookup->cb = std::move(cb);
  start_attempt(lookup);
}

void Daemon::start_attempt(const std::shared_ptr<AsyncLookup>& lookup) {
  const Resilience& res = config_.resilience;
  const IsdAs dst = lookup->dst;
  // Pick the first replica whose breaker admits the request (index order,
  // so failover is deterministic). With every breaker open there is no
  // one left to ask: degrade.
  std::size_t target = 0;
  if (res.enabled) {
    bool admitted = false;
    for (std::size_t r = 0; r < replica_count(); ++r) {
      if (breaker_for(dst, r).allow(net_.sim().now())) {
        target = r;
        admitted = true;
        break;
      }
    }
    if (!admitted) {
      lookup->cb(degraded(dst));
      return;
    }
  }
  ++lookup->attempts;
  // Settled by exactly one of: the service's answer or the timeout. A
  // late answer (after the timeout fired) is discarded.
  auto settled = std::make_shared<bool>(false);
  services_->replica(target)->lookup_paths(
      dst, [this, lookup, settled, dst, target](
               const std::vector<controlplane::Path>& paths) {
        if (*settled) return;
        *settled = true;
        if (config_.resilience.enabled) {
          breaker_for(dst, target).record_success();
        }
        CacheEntry entry;
        entry.paths = paths;
        entry.fetched_at = net_.sim().now();
        cache_.insert_or_assign(dst, std::move(entry));
        lookup->cb(
            PathLookup{filter_alive(paths), PathSource::kFetched, false});
      });
  // Legacy mode: no timeout — during an outage the callback simply never
  // fires (the dropped-RPC behaviour the chaos campaigns surfaced).
  if (!res.enabled) return;
  net_.sim().schedule_after(
      simnet::Domain::current(), res.lookup_timeout,
      [this, lookup, settled, dst, target] {
        if (*settled) return;
        *settled = true;
        lookup_timeouts_->inc();
        record_fetch_failure(dst, target);
        if (lookup->attempts < config_.resilience.backoff.max_attempts) {
          lookup_retries_->inc();
          const Duration delay =
              config_.resilience.backoff.delay(lookup->attempts, rng_);
          net_.sim().schedule_after(simnet::Domain::current(), delay,
                                    [this, lookup] { start_attempt(lookup); });
          return;
        }
        lookup->cb(degraded(dst));
      });
}

const cppki::Trc* Daemon::trc(Isd isd) const {
  auto* pki = net_.pki(isd);
  return pki == nullptr ? nullptr : &pki->trc();
}

void Daemon::report_path_down(const std::string& fingerprint) {
  prune_quarantine();
  down_until_[fingerprint] = net_.sim().now() + config_.down_path_penalty;
  quarantine_size_->set(static_cast<std::int64_t>(down_until_.size()));
  obs::FlightRecorder::global().record(
      obs::TraceType::kPathDown, net_.sim().now(),
      net_.sim().executed_events(), "daemon-" + ia_.to_string(), fingerprint);
}

bool Daemon::path_alive(const controlplane::Path& path) const {
  const auto it = down_until_.find(path.fingerprint());
  return it == down_until_.end() || net_.sim().now() >= it->second;
}

}  // namespace sciera::endhost
