#include "endhost/daemon.h"

#include "obs/flight_recorder.h"

namespace sciera::endhost {

Daemon::Daemon(controlplane::ScionNetwork& net, IsdAs ia, Config config)
    : net_(net), ia_(ia), config_(config),
      service_(net.control_service(ia)) {
  auto& registry = obs::MetricsRegistry::global();
  const obs::Labels base{
      {"daemon", registry.instance_label("daemon", ia.to_string())}};
  lookups_ = &registry.counter("sciera_daemon_lookups_total", base);
  const auto cache = [&](const char* result) {
    obs::Labels labels = base;
    labels.emplace_back("result", result);
    return &registry.counter("sciera_daemon_cache_total", labels);
  };
  cache_hits_ = cache("hit");
  cache_misses_ = cache("miss");
  quarantine_size_ = &registry.gauge("sciera_daemon_quarantined", base);
}

std::vector<controlplane::Path> Daemon::filter_alive(
    std::vector<controlplane::Path> paths) const {
  std::erase_if(paths, [this](const controlplane::Path& path) {
    return !path_alive(path);
  });
  return paths;
}

void Daemon::prune_quarantine() {
  const SimTime now = net_.sim().now();
  std::erase_if(down_until_,
                [now](const auto& entry) { return now >= entry.second; });
  quarantine_size_->set(static_cast<std::int64_t>(down_until_.size()));
}

std::vector<controlplane::Path> Daemon::paths(IsdAs dst) {
  prune_quarantine();
  lookups_->inc();
  auto it = cache_.find(dst);
  // Fresh iff age < ttl: an entry aged exactly path_cache_ttl is stale.
  const bool hit =
      it != cache_.end() &&
      net_.sim().now() - it->second.fetched_at < config_.path_cache_ttl;
  obs::FlightRecorder::global().record(
      obs::TraceType::kPathLookup, net_.sim().now(),
      net_.sim().executed_events(), "daemon-" + ia_.to_string(),
      dst.to_string() + (hit ? " hit" : " miss"));
  if (hit) {
    cache_hits_->inc();
  } else {
    cache_misses_->inc();
    CacheEntry entry;
    entry.paths = service_->lookup_paths_now(dst);
    entry.fetched_at = net_.sim().now();
    it = cache_.insert_or_assign(dst, std::move(entry)).first;
  }
  return filter_alive(it->second.paths);
}

void Daemon::paths_async(
    IsdAs dst, std::function<void(std::vector<controlplane::Path>)> cb) {
  prune_quarantine();
  lookups_->inc();
  service_->lookup_paths(
      dst, [this, cb = std::move(cb)](
               const std::vector<controlplane::Path>& paths) {
        cb(filter_alive(paths));
      });
}

const cppki::Trc* Daemon::trc(Isd isd) const {
  auto* pki = net_.pki(isd);
  return pki == nullptr ? nullptr : &pki->trc();
}

void Daemon::report_path_down(const std::string& fingerprint) {
  prune_quarantine();
  down_until_[fingerprint] = net_.sim().now() + config_.down_path_penalty;
  quarantine_size_->set(static_cast<std::int64_t>(down_until_.size()));
  obs::FlightRecorder::global().record(
      obs::TraceType::kPathDown, net_.sim().now(),
      net_.sim().executed_events(), "daemon-" + ia_.to_string(), fingerprint);
}

bool Daemon::path_alive(const controlplane::Path& path) const {
  const auto it = down_until_.find(path.fingerprint());
  return it == down_until_.end() || net_.sim().now() >= it->second;
}

}  // namespace sciera::endhost
