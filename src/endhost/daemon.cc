#include "endhost/daemon.h"

namespace sciera::endhost {

Daemon::Daemon(controlplane::ScionNetwork& net, IsdAs ia, Config config)
    : net_(net), ia_(ia), config_(config),
      service_(net.control_service(ia)) {}

std::vector<controlplane::Path> Daemon::filter_alive(
    std::vector<controlplane::Path> paths) const {
  std::erase_if(paths, [this](const controlplane::Path& path) {
    return !path_alive(path);
  });
  return paths;
}

std::vector<controlplane::Path> Daemon::paths(IsdAs dst) {
  ++lookups_;
  auto it = cache_.find(dst);
  if (it == cache_.end() ||
      net_.sim().now() - it->second.fetched_at > config_.path_cache_ttl) {
    CacheEntry entry;
    entry.paths = service_->lookup_paths_now(dst);
    entry.fetched_at = net_.sim().now();
    it = cache_.insert_or_assign(dst, std::move(entry)).first;
  }
  return filter_alive(it->second.paths);
}

void Daemon::paths_async(
    IsdAs dst, std::function<void(std::vector<controlplane::Path>)> cb) {
  ++lookups_;
  service_->lookup_paths(
      dst, [this, cb = std::move(cb)](
               const std::vector<controlplane::Path>& paths) {
        cb(filter_alive(paths));
      });
}

const cppki::Trc* Daemon::trc(Isd isd) const {
  auto* pki = net_.pki(isd);
  return pki == nullptr ? nullptr : &pki->trc();
}

void Daemon::report_path_down(const std::string& fingerprint) {
  down_until_[fingerprint] = net_.sim().now() + config_.down_path_penalty;
}

bool Daemon::path_alive(const controlplane::Path& path) const {
  const auto it = down_until_.find(path.fingerprint());
  return it == down_until_.end() || net_.sim().now() >= it->second;
}

}  // namespace sciera::endhost
