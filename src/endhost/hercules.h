// Hercules-style multipath bulk transfer (Section 4.7.1): the Science-DMZ
// workhorse. Given a set of SCION paths, it plans a transfer that uses
// all of them simultaneously — respecting shared-link capacities via
// progressive filling — and models the end-host bottleneck: the legacy
// dispatcher caps receive throughput at a single core, while the XDP
// bypass (and later the dispatcherless stack) scales with the NIC.
#pragma once

#include <vector>

#include "controlplane/combinator.h"
#include "endhost/dispatcher.h"

namespace sciera::endhost {

struct HerculesConfig {
  std::size_t payload_bytes = 1200;  // per packet
  HostMode receiver_mode = HostMode::kDispatcherless;
  bool use_xdp = false;              // XDP bypass (Section 4.8's band-aid)
  double dispatcher_pps = 250'000;   // shared single-core dispatcher
  double xdp_pps_per_core = 4'000'000;
  int cores = 8;
  double nic_bps = 100e9;
};

struct PathAllocation {
  std::size_t path_index = 0;
  double rate_bps = 0;
};

struct TransferReport {
  double aggregate_bps = 0;
  double host_limit_bps = 0;      // receive-side bottleneck
  double network_limit_bps = 0;   // sum of path allocations
  Duration transfer_time = 0;
  std::vector<PathAllocation> allocations;
};

class Hercules {
 public:
  Hercules(const topology::Topology& topo, HerculesConfig config)
      : topo_(topo), config_(config) {}

  // Max-min fair progressive filling of the chosen paths subject to link
  // capacities, capped by the receive-host bottleneck; then the transfer
  // time for `file_bytes`.
  [[nodiscard]] TransferReport plan(
      const std::vector<controlplane::Path>& paths,
      std::uint64_t file_bytes) const;

  // The receive-side packet-rate ceiling, in bit/s for this payload size.
  [[nodiscard]] double host_limit_bps() const;

 private:
  const topology::Topology& topo_;
  HerculesConfig config_;
};

}  // namespace sciera::endhost
