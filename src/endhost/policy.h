// Path policies (Sections 4.2.2, 4.7, 4.9): filtering (geofencing, AS
// deny-lists, the SCIERA no-commercial-transit rule) and preference
// sorting (hops, latency, disjointness, carbon-aware "green" routing).
// This is what the PAN-style socket exposes to applications via its
// policy/preference flags — the bat tool's CLI options in Section 5.2.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "controlplane/combinator.h"

namespace sciera::endhost {

// Per-AS carbon intensity (gCO2eq/kWh of the hosting grid), the input to
// green routing [Tabaeiaghdaei et al., e-Energy 2023].
class CarbonMap {
 public:
  void set(IsdAs ia, double intensity) { intensity_[ia] = intensity; }
  [[nodiscard]] double get(IsdAs ia) const {
    const auto it = intensity_.find(ia);
    return it == intensity_.end() ? default_intensity_ : it->second;
  }
  void set_default(double intensity) { default_intensity_ = intensity; }

  // Grid intensities for the SCIERA PoP countries (approximate public
  // figures; relative order is what matters for path choice).
  static CarbonMap sciera_defaults();

 private:
  std::map<IsdAs, double> intensity_;
  double default_intensity_ = 300.0;
};

// Sum of per-AS intensities along the path (simple additive model).
[[nodiscard]] double path_carbon_score(const controlplane::Path& path,
                                       const CarbonMap& carbon);

struct PathPolicy {
  enum class Preference { kHops, kLatency, kDisjointness, kCarbon };

  // --- Filters -------------------------------------------------------------
  std::vector<IsdAs> deny_ases;
  std::vector<Isd> deny_isds;  // geofencing: never cross these ISDs
  std::vector<IsdAs> require_ases;
  std::optional<std::size_t> max_hops;
  // Section 4.9: commercial ISDs may appear only as endpoints, never as
  // transit, so SCIERA cannot be abused as free transit.
  bool forbid_commercial_transit = false;
  std::vector<Isd> commercial_isds = {64};

  // --- Ordering --------------------------------------------------------------
  // Applied lexicographically, like PAN's comma-separated sorting options.
  std::vector<Preference> preference = {Preference::kLatency};
  // Reference path for the disjointness preference (most-disjoint-from).
  std::optional<controlplane::Path> disjoint_reference;
  CarbonMap carbon = CarbonMap::sciera_defaults();

  [[nodiscard]] bool admits(const controlplane::Path& path) const;
  // Filters + sorts; the first element is the policy's preferred path.
  [[nodiscard]] std::vector<controlplane::Path> apply(
      std::vector<controlplane::Path> paths) const;
};

// Convenience builders mirroring the bat tool's CLI flags.
[[nodiscard]] PathPolicy lowest_latency_policy();
[[nodiscard]] PathPolicy fewest_hops_policy();
[[nodiscard]] PathPolicy green_policy();
[[nodiscard]] PathPolicy geofence_policy(std::vector<Isd> deny_isds);

}  // namespace sciera::endhost
