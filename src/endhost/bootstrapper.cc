#include "endhost/bootstrapper.h"

namespace sciera::endhost {

Bootstrapper::Bootstrapper(const NetworkEnvironment& env, OsProfile os,
                           Config config)
    : env_(env), os_(std::move(os)), config_(std::move(config)) {}

Result<std::pair<HintMechanism, Duration>> Bootstrapper::discover_hint(
    Rng& rng) const {
  Duration spent = 0;
  for (HintMechanism mechanism : config_.preference) {
    if (!mechanism_available(mechanism, env_)) continue;
    spent += sample_hint_latency(mechanism, env_, os_, rng);
    return std::make_pair(mechanism, spent);
  }
  return Error{Errc::kUnreachable,
               "no bootstrapping hint mechanism available in this network"};
}

Result<BootstrapResult> Bootstrapper::run(const BootstrapServer& server,
                                          Rng& rng, SimTime now,
                                          const cppki::Trc* out_of_band_trc) {
  BootstrapResult result;

  auto hint = discover_hint(rng);
  if (!hint) return hint.error();
  result.timings.mechanism_used = hint->first;
  result.timings.hint_retrieval = hint->second;

  // Config retrieval: one HTTP GET for /topology and one for /trcs, plus
  // the server's service time and OS-stack overhead per request.
  server.count_request();
  server.count_request();
  Duration config_time = 0;
  for (int request = 0; request < 2; ++request) {
    const double wire_ms =
        to_ms(2 * env_.lan_one_way) * rng.lognormal_median(1.0, 0.25);
    const double service_ms = to_ms(server.config().service_time) *
                              rng.lognormal_median(1.0, 0.5);
    const double stack_ms = to_ms(os_.syscall_overhead * 4) *
                            rng.lognormal_median(1.0, os_.variance_sigma);
    config_time += from_ms(wire_ms + service_ms + stack_ms);
  }
  result.timings.config_retrieval = config_time;

  // Anchor the TRC chain: out-of-band anchor if we have one, else TOFU.
  const auto& trcs = server.trcs();
  if (trcs.empty()) {
    return Error{Errc::kNotFound, "bootstrap server has no TRCs"};
  }
  if (out_of_band_trc != nullptr) {
    if (auto status = result.trust_store.anchor(*out_of_band_trc);
        !status.ok()) {
      return status.error();
    }
  } else if (config_.trust_on_first_use) {
    if (auto status = result.trust_store.anchor(trcs.front()); !status.ok()) {
      return status.error();
    }
  } else {
    return Error{Errc::kVerificationFailed,
                 "no out-of-band TRC and TOFU disabled"};
  }
  // Later TRCs must chain from the anchor.
  for (std::size_t i = 1; i < trcs.size(); ++i) {
    if (auto status = result.trust_store.update(trcs[i]); !status.ok()) {
      return status.error();
    }
  }

  // Verify the signed topology against the (now anchored) trust chain.
  const SignedTopology& signed_topo = server.topology();
  if (auto status = verify_signed_topology(signed_topo, result.trust_store, now);
      !status.ok()) {
    return status.error();
  }
  auto parsed = topology::parse(signed_topo.topology_text);
  if (!parsed) return parsed.error();
  result.local_topology = std::move(parsed).value();
  result.local_ia = signed_topo.as;
  return result;
}

}  // namespace sciera::endhost
