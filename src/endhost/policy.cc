#include "endhost/policy.h"

#include <algorithm>

#include "topology/sciera_net.h"

namespace sciera::endhost {

CarbonMap CarbonMap::sciera_defaults() {
  namespace a = topology::ases;
  CarbonMap map;
  map.set_default(300.0);
  // Very clean grids (hydro/nuclear heavy).
  map.set(a::switch71(), 45.0);   // CH
  map.set(a::switch64(), 45.0);
  map.set(a::eth(), 45.0);
  map.set(a::geant(), 120.0);     // mixed EU backbone
  map.set(a::sidn(), 250.0);      // NL
  map.set(a::ovgu(), 380.0);      // DE
  map.set(a::demokritos(), 420.0);  // GR
  map.set(a::cybexer(), 450.0);   // EE (shale legacy)
  map.set(a::ccdcoe(), 450.0);
  // KREONET ring + Asian leaves.
  map.set(a::kisti_dj(), 430.0);  // KR
  map.set(a::kisti_hk(), 550.0);  // HK
  map.set(a::kisti_sg(), 470.0);  // SG
  map.set(a::kisti_ams(), 250.0);
  map.set(a::kisti_chg(), 370.0);  // US midwest
  map.set(a::kisti_stl(), 110.0);  // US northwest hydro
  map.set(a::korea_univ(), 430.0);
  map.set(a::cityu(), 550.0);
  map.set(a::sec(), 470.0);
  map.set(a::nus(), 470.0);
  map.set(a::kaust(), 600.0);     // SA
  // Americas.
  map.set(a::bridges(), 340.0);
  map.set(a::uva(), 340.0);
  map.set(a::princeton(), 330.0);
  map.set(a::equinix(), 340.0);
  map.set(a::fabric(), 340.0);
  map.set(a::rnp(), 100.0);       // BR hydro
  map.set(a::ufms(), 100.0);
  // Africa.
  map.set(a::wacren(), 480.0);
  return map;
}

double path_carbon_score(const controlplane::Path& path,
                         const CarbonMap& carbon) {
  double score = 0.0;
  for (IsdAs ia : path.as_sequence) score += carbon.get(ia);
  return score;
}

bool PathPolicy::admits(const controlplane::Path& path) const {
  if (max_hops && path.as_sequence.size() > *max_hops) return false;
  for (IsdAs ia : path.as_sequence) {
    if (std::find(deny_ases.begin(), deny_ases.end(), ia) != deny_ases.end()) {
      return false;
    }
    if (std::find(deny_isds.begin(), deny_isds.end(), ia.isd()) !=
        deny_isds.end()) {
      return false;
    }
  }
  for (IsdAs required : require_ases) {
    if (std::find(path.as_sequence.begin(), path.as_sequence.end(),
                  required) == path.as_sequence.end()) {
      return false;
    }
  }
  if (forbid_commercial_transit) {
    // Commercial ASes may appear only as a contiguous run touching one end
    // of the path (traffic terminating in / originating from a commercial
    // network); a commercial AS strictly between two SCIERA ASes means the
    // academic network would act as, or use, commercial transit.
    const auto is_commercial = [this](IsdAs ia) {
      return std::find(commercial_isds.begin(), commercial_isds.end(),
                       ia.isd()) != commercial_isds.end();
    };
    std::size_t first = path.as_sequence.size();
    std::size_t last = 0;
    bool any = false;
    for (std::size_t i = 0; i < path.as_sequence.size(); ++i) {
      if (is_commercial(path.as_sequence[i])) {
        first = std::min(first, i);
        last = i;
        any = true;
      }
    }
    if (any) {
      for (std::size_t i = first; i <= last; ++i) {
        if (!is_commercial(path.as_sequence[i])) return false;  // gap
      }
      const bool touches_end =
          first == 0 || last + 1 == path.as_sequence.size();
      if (!touches_end) return false;
    }
  }
  return true;
}

std::vector<controlplane::Path> PathPolicy::apply(
    std::vector<controlplane::Path> paths) const {
  std::erase_if(paths,
                [this](const controlplane::Path& p) { return !admits(p); });
  auto key_less = [this](const controlplane::Path& x,
                         const controlplane::Path& y) {
    for (Preference pref : preference) {
      switch (pref) {
        case Preference::kHops:
          if (x.as_sequence.size() != y.as_sequence.size()) {
            return x.as_sequence.size() < y.as_sequence.size();
          }
          break;
        case Preference::kLatency:
          if (x.static_rtt != y.static_rtt) return x.static_rtt < y.static_rtt;
          break;
        case Preference::kDisjointness: {
          if (disjoint_reference) {
            const double dx = path_disjointness(x, *disjoint_reference);
            const double dy = path_disjointness(y, *disjoint_reference);
            if (dx != dy) return dx > dy;  // more disjoint first
          }
          break;
        }
        case Preference::kCarbon: {
          const double cx = path_carbon_score(x, carbon);
          const double cy = path_carbon_score(y, carbon);
          if (cx != cy) return cx < cy;
          break;
        }
      }
    }
    return x.fingerprint() < y.fingerprint();
  };
  std::stable_sort(paths.begin(), paths.end(), key_less);
  return paths;
}

PathPolicy lowest_latency_policy() {
  PathPolicy policy;
  policy.preference = {PathPolicy::Preference::kLatency};
  return policy;
}

PathPolicy fewest_hops_policy() {
  PathPolicy policy;
  policy.preference = {PathPolicy::Preference::kHops,
                       PathPolicy::Preference::kLatency};
  return policy;
}

PathPolicy green_policy() {
  PathPolicy policy;
  policy.preference = {PathPolicy::Preference::kCarbon,
                       PathPolicy::Preference::kLatency};
  return policy;
}

PathPolicy geofence_policy(std::vector<Isd> deny_isds) {
  PathPolicy policy;
  policy.deny_isds = std::move(deny_isds);
  return policy;
}

}  // namespace sciera::endhost
