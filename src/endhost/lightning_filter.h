// LightningFilter (Sections 4.7.1, 4.9): the line-rate SCION firewall in
// front of a Science-DMZ transfer node. It authenticates SCION traffic
// with per-source-AS symmetric keys (DRKey-style derivation from the
// filter's secret), enforces AS-level allow rules and per-AS rate limits,
// and — because each packet check is one CMAC — scales linearly over
// cores with RSS, unlike a single-queue appliance.
#pragma once

#include <map>
#include <optional>

#include "common/time.h"
#include "crypto/cmac.h"
#include "dataplane/packet.h"
#include "obs/metrics.h"

namespace sciera::endhost {

class LightningFilter {
 public:
  struct Config {
    bool require_auth = true;
    // Default-deny when rules are present; empty rules = allow all.
    std::vector<IsdAs> allowed_sources;
    // Per-source-AS token bucket (packets/second, burst).
    double rate_pps = 0;  // 0 = unlimited
    double burst = 1000;
    int cores = 8;
    double per_core_pps = 3'000'000;  // DPDK per-core CMAC check rate
  };

  enum class Verdict { kAccept, kDropRule, kDropAuth, kDropRate };

  LightningFilter(BytesView filter_secret, Config config);
  LightningFilter(BytesView filter_secret)
      : LightningFilter(filter_secret, Config{}) {}

  struct Stats {  // registry-backed snapshot
    std::uint64_t accepted = 0;
    std::uint64_t dropped_rule = 0;
    std::uint64_t dropped_auth = 0;
    std::uint64_t dropped_rate = 0;
  };

  // DRKey-style key for a source AS; the sender-side helper derives the
  // same key (fetched via the control plane in the real system).
  [[nodiscard]] crypto::Aes128::Key key_for(IsdAs src) const;

  // Authenticator a sender attaches to its payload.
  [[nodiscard]] Bytes make_authenticator(IsdAs src, BytesView payload) const;

  // Checks one packet whose payload ends with a 16-byte authenticator.
  Verdict check(const dataplane::ScionPacket& packet, SimTime now);

  [[nodiscard]] Stats stats() const;

  // Aggregate filtering throughput in bit/s for a packet size, with or
  // without RSS spreading flows across cores (the Section 4.8 contrast).
  [[nodiscard]] double throughput_bps(std::size_t packet_bytes,
                                      bool rss) const;

 private:
  struct Bucket {
    double tokens = 0;
    SimTime last = 0;
  };

  Bytes secret_;
  Config config_;
  obs::Counter* accepted_ = nullptr;
  obs::Counter* dropped_rule_ = nullptr;
  obs::Counter* dropped_auth_ = nullptr;
  obs::Counter* dropped_rate_ = nullptr;
  std::map<std::uint64_t, Bucket> buckets_;
};

}  // namespace sciera::endhost
