// LightningFilter (Sections 4.7.1, 4.9): the line-rate SCION firewall in
// front of a Science-DMZ transfer node. It authenticates SCION traffic
// with per-source-AS symmetric keys (DRKey-style derivation from the
// filter's secret), enforces AS-level allow rules and per-AS rate limits,
// and — because each packet check is one CMAC — scales linearly over
// cores with RSS, unlike a single-queue appliance.
//
// Fast path: the per-source verification context (AES key schedule +
// CMAC subkeys) is derived once when a source AS first appears and cached
// in the bounded per-source table, mirroring the border router's
// HopVerifier — steady-state checks run zero key schedules
// (crypto::Aes128::key_schedules_run() is the exactness probe). The
// table is capped: a spoofed-source flood that fabricates source ASes
// can fill it, after which idle entries are reclaimed and — when nothing
// is reclaimable — new sources are dropped with kDropOverflow before any
// crypto runs.
#pragma once

#include <map>
#include <optional>

#include "common/time.h"
#include "crypto/cmac.h"
#include "dataplane/packet.h"
#include "obs/metrics.h"

namespace sciera::endhost {

// DRKey-style per-source-AS key derived from a deployment's filter
// secret. The sender-side helper (LightningSealer) and the filter derive
// the same key; in the real system the sender fetches it via DRKey.
[[nodiscard]] crypto::Aes128::Key lightning_key(BytesView filter_secret,
                                                IsdAs src);

// Sender-side authenticator context: one key schedule at construction,
// zero per-packet. Hosts that seal every payload (the attack-soak
// workload) hold one sealer per source AS.
class LightningSealer {
 public:
  LightningSealer(BytesView filter_secret, IsdAs src);

  [[nodiscard]] IsdAs source() const { return src_; }
  // 16-byte authenticator over `payload`; the sender appends it.
  [[nodiscard]] Bytes seal(BytesView payload) const;

 private:
  IsdAs src_;
  crypto::AesCmac cmac_;
};

class LightningFilter {
 public:
  struct Config {
    bool require_auth = true;
    // Default-deny when rules are present; empty rules = allow all.
    std::vector<IsdAs> allowed_sources;
    // Per-source-AS token bucket (packets/second, burst).
    double rate_pps = 0;  // 0 = unlimited
    double burst = 1000;
    int cores = 8;
    double per_core_pps = 3'000'000;  // DPDK per-core CMAC check rate
    // Bound on the per-source state table (cached verification context +
    // token bucket per source AS). 0 = unbounded (legacy behaviour).
    std::size_t max_sources = 4096;
    // A source idle this long is reclaimable when the table is full.
    Duration idle_timeout = 10 * kSecond;
  };

  enum class Verdict { kAccept, kDropRule, kDropAuth, kDropRate,
                       kDropOverflow };

  LightningFilter(BytesView filter_secret, Config config);
  LightningFilter(BytesView filter_secret)
      : LightningFilter(filter_secret, Config{}) {}

  struct Stats {  // registry-backed snapshot
    std::uint64_t accepted = 0;
    std::uint64_t dropped_rule = 0;
    std::uint64_t dropped_auth = 0;
    std::uint64_t dropped_rate = 0;
    std::uint64_t dropped_overflow = 0;
  };

  // DRKey-style key for a source AS (== lightning_key(secret, src)).
  [[nodiscard]] crypto::Aes128::Key key_for(IsdAs src) const;

  // Authenticator a sender attaches to its payload. Convenience for
  // tests/examples; per-packet senders hold a LightningSealer instead.
  [[nodiscard]] Bytes make_authenticator(IsdAs src, BytesView payload) const;

  // Checks one packet whose payload ends with a 16-byte authenticator.
  Verdict check(const dataplane::ScionPacket& packet, SimTime now);
  // In-path form: checks an L4 payload (UDP datagram data) from `src`
  // ending with a 16-byte authenticator. The host stack calls this in
  // front of the dispatcher/port demux.
  Verdict check(IsdAs src, BytesView payload, SimTime now);

  [[nodiscard]] Stats stats() const;
  // Live per-source table size (bounded by Config::max_sources).
  [[nodiscard]] std::size_t source_count() const { return sources_.size(); }

  // Aggregate filtering throughput in bit/s for a packet size, with or
  // without RSS spreading flows across cores (the Section 4.8 contrast).
  [[nodiscard]] double throughput_bps(std::size_t packet_bytes,
                                      bool rss) const;

 private:
  struct Bucket {
    double tokens = 0;
    SimTime last = 0;
  };
  // Everything the filter keeps per source AS: the cached CMAC
  // verification context (the expensive part — one key schedule at
  // admission, zero afterwards), the rate bucket, and reclamation
  // bookkeeping.
  struct SourceState {
    crypto::AesCmac cmac;
    Bucket bucket;
    SimTime last_seen = 0;
    // A source that never produced a valid authenticator is reclaimed
    // first — spoofed flood residue before paying customers.
    bool authenticated = false;
  };

  // Looks up (or admits) the per-source state. Returns nullptr when the
  // table is full and nothing is reclaimable — the kDropOverflow path,
  // taken before any key derivation runs.
  [[nodiscard]] SourceState* source_state(IsdAs src, SimTime now);
  // Erases idle entries (never-authenticated first); returns true if at
  // least one slot was freed.
  bool reclaim(SimTime now);

  Bytes secret_;
  Config config_;
  obs::Counter* accepted_ = nullptr;
  obs::Counter* dropped_rule_ = nullptr;
  obs::Counter* dropped_auth_ = nullptr;
  obs::Counter* dropped_rate_ = nullptr;
  obs::Counter* dropped_overflow_ = nullptr;
  // Ordered by packed ISD-AS: reclamation sweeps iterate, and hash order
  // must not leak into which source is reclaimed first.
  std::map<std::uint64_t, SourceState> sources_;
};

}  // namespace sciera::endhost
