#include "endhost/bootstrap_server.h"

namespace sciera::endhost {

Bytes SignedTopology::signing_payload() const {
  Writer w;
  w.str("sciera-topology-v1");
  w.u64(as.packed());
  w.str(topology_text);
  return std::move(w).take();
}

BootstrapServer::BootstrapServer(IsdAs as, std::string local_view_text,
                                 const cppki::AsCredentials& creds,
                                 std::vector<cppki::Trc> trcs, Config config)
    : trcs_(std::move(trcs)), config_(config) {
  topology_.as = as;
  topology_.topology_text = std::move(local_view_text);
  refresh(topology_.topology_text, creds);
}

void BootstrapServer::refresh(std::string local_view_text,
                              const cppki::AsCredentials& creds) {
  topology_.topology_text = std::move(local_view_text);
  topology_.as_cert = creds.as_cert;
  topology_.ca_cert = creds.ca_cert;
  topology_.signature = crypto::Ed25519::sign(creds.signing_key.seed,
                                              topology_.signing_payload());
}

std::string local_topology_view(const topology::Topology& topo, IsdAs as) {
  topology::Topology slice;
  const auto* info = topo.find_as(as);
  if (info == nullptr) return "";
  (void)slice.add_as(*info);
  for (topology::LinkId id : topo.links_of(as)) {
    const auto* link = topo.find_link(id);
    const IsdAs other = link->other(as);
    if (slice.find_as(other) == nullptr) {
      (void)slice.add_as(*topo.find_as(other));
    }
    (void)slice.add_link(link->label, link->a, link->b, link->type,
                         link->delay, link->bandwidth_bps, link->a_iface,
                         link->b_iface);
  }
  return topology::serialize(slice);
}

Status verify_signed_topology(const SignedTopology& topo,
                              const cppki::TrustStore& store, SimTime now) {
  const auto* trc = store.latest(topo.as.isd());
  if (trc == nullptr) {
    return Error{Errc::kNotFound,
                 "no anchored TRC for ISD " + std::to_string(topo.as.isd())};
  }
  if (auto status = cppki::verify_chain(topo.as_cert, topo.ca_cert, *trc, now);
      !status.ok()) {
    return status;
  }
  if (topo.as_cert.subject != topo.as) {
    return Error{Errc::kVerificationFailed,
                 "topology signed by foreign AS certificate"};
  }
  if (!crypto::Ed25519::verify(topo.as_cert.subject_key,
                               topo.signing_payload(), topo.signature)) {
    return Error{Errc::kVerificationFailed, "bad topology signature"};
  }
  return {};
}

}  // namespace sciera::endhost
