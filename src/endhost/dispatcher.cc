#include "endhost/dispatcher.h"

#include "endhost/lightning_filter.h"

namespace sciera::endhost {

HostStack::HostStack(controlplane::ScionNetwork& net, dataplane::Address addr,
                     Config config)
    : net_(net), addr_(addr), config_(config) {
  auto& registry = obs::MetricsRegistry::global();
  const obs::Labels base{
      {"host", registry.instance_label("host", addr.to_string())}};
  delivered_ = &registry.counter("sciera_host_delivered_total", base);
  const auto dropped = [&](const char* reason) {
    obs::Labels labels = base;
    labels.emplace_back("reason", reason);
    return &registry.counter("sciera_host_dropped_total", labels);
  };
  dropped_no_port_ = dropped("no_port");
  dropped_overload_ = dropped("overload");
  dropped_filtered_ = dropped("filtered");
  const auto status = net_.register_host(
      addr_, [this](const dataplane::ScionPacket& packet, SimTime arrival) {
        on_local_delivery(packet, arrival);
      });
  (void)status;
}

HostStack::Stats HostStack::stats() const {
  return Stats{delivered_->value(), dropped_no_port_->value(),
               dropped_overload_->value(), dropped_filtered_->value()};
}

HostStack::~HostStack() { net_.unregister_host(addr_); }

Result<std::uint16_t> HostStack::bind(std::uint16_t port, Receiver receiver) {
  if (port == 0) {
    while (ports_.contains(next_ephemeral_)) ++next_ephemeral_;
    port = next_ephemeral_++;
  }
  if (ports_.contains(port)) {
    return Error{Errc::kResourceExhausted,
                 "port " + std::to_string(port) + " already bound"};
  }
  ports_.emplace(port, std::move(receiver));
  return port;
}

void HostStack::unbind(std::uint16_t port) { ports_.erase(port); }

Status HostStack::send(dataplane::ScionPacket packet) {
  packet.src = addr_;
  return net_.send_from_host(packet);
}

std::optional<Duration> HostStack::dispatcher_delay(SimTime now) {
  // Single shared server: each packet occupies the dispatcher for
  // 1/pps seconds; the backlog beyond the queue bound is dropped.
  const auto service =
      static_cast<Duration>(static_cast<double>(kSecond) /
                            config_.dispatcher_pps);
  const SimTime start = std::max(now, dispatcher_free_at_);
  const auto backlog = static_cast<std::size_t>((start - now) / service);
  if (backlog > config_.dispatcher_queue) return std::nullopt;
  dispatcher_free_at_ = start + service;
  return (start + service) - now;
}

void HostStack::on_local_delivery(const dataplane::ScionPacket& packet,
                                  SimTime arrival) {
  if (packet.next_hdr == dataplane::kProtoScmp) {
    if (!scmp_receiver_) return;
    auto message = dataplane::ScmpMessage::parse(packet.payload);
    if (!message) return;
    auto receiver = scmp_receiver_;
    net_.sim().schedule_after(
        simnet::Domain::current(), config_.local_hop,
        [receiver, packet, message = std::move(message).value(),
         &sim = net_.sim()] { receiver(packet, message, sim.now()); });
    return;
  }
  if (packet.next_hdr != dataplane::kProtoUdp) return;
  auto datagram = dataplane::UdpDatagram::parse(packet.payload);
  if (!datagram) {
    dropped_no_port_->inc();
    return;
  }
  // In-path LightningFilter: unauthenticated traffic is shed here, before
  // it can consume the (shared, finite) dispatcher queue below.
  if (filter_ != nullptr &&
      filter_->check(packet.src.ia, datagram->data, arrival) !=
          LightningFilter::Verdict::kAccept) {
    dropped_filtered_->inc();
    return;
  }
  const auto it = ports_.find(datagram->dst_port);
  if (it == ports_.end()) {
    dropped_no_port_->inc();
    return;
  }

  Duration extra = config_.local_hop;
  if (config_.mode == HostMode::kDispatcher) {
    const auto queued = dispatcher_delay(arrival);
    if (!queued) {
      dropped_overload_->inc();
      return;
    }
    extra += *queued;
  } else {
    extra += static_cast<Duration>(static_cast<double>(kSecond) /
                                   config_.dispatcherless_pps);
  }

  delivered_->inc();
  Receiver& receiver = it->second;
  auto dg = std::move(datagram).value();
  net_.sim().schedule_after(simnet::Domain::current(), extra,
                            [receiver, packet, dg, &sim = net_.sim()] {
                              receiver(packet, dg, sim.now());
                            });
}

}  // namespace sciera::endhost
