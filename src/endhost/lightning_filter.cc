#include "endhost/lightning_filter.h"

#include <algorithm>

#include "crypto/hmac.h"

namespace sciera::endhost {

crypto::Aes128::Key lightning_key(BytesView filter_secret, IsdAs src) {
  Writer w;
  w.str("lightning-drkey-v1");
  w.u64(src.packed());
  Bytes input{filter_secret.begin(), filter_secret.end()};
  const Bytes label = std::move(w).take();
  const auto digest = crypto::hmac_sha256(input, label);
  crypto::Aes128::Key key{};
  std::copy_n(digest.begin(), key.size(), key.begin());
  return key;
}

LightningSealer::LightningSealer(BytesView filter_secret, IsdAs src)
    : src_(src),
      // NOLINTNEXTLINE(percall-keyschedule) once per sealer, not per packet
      cmac_(lightning_key(filter_secret, src)) {}

Bytes LightningSealer::seal(BytesView payload) const {
  const auto mac = cmac_.compute(payload);
  return Bytes{mac.begin(), mac.end()};
}

LightningFilter::LightningFilter(BytesView filter_secret, Config config)
    : secret_(filter_secret.begin(), filter_secret.end()),
      config_(std::move(config)) {
  auto& registry = obs::MetricsRegistry::global();
  const obs::Labels base{
      {"filter", registry.instance_label("lightning_filter", "lf")}};
  accepted_ = &registry.counter("sciera_filter_accepted_total", base);
  const auto dropped = [&](const char* reason) {
    obs::Labels labels = base;
    labels.emplace_back("reason", reason);
    return &registry.counter("sciera_filter_dropped_total", labels);
  };
  dropped_rule_ = dropped("rule");
  dropped_auth_ = dropped("auth");
  dropped_rate_ = dropped("rate");
  dropped_overflow_ = dropped("overflow");
}

LightningFilter::Stats LightningFilter::stats() const {
  return Stats{accepted_->value(), dropped_rule_->value(),
               dropped_auth_->value(), dropped_rate_->value(),
               dropped_overflow_->value()};
}

crypto::Aes128::Key LightningFilter::key_for(IsdAs src) const {
  return lightning_key(secret_, src);
}

Bytes LightningFilter::make_authenticator(IsdAs src, BytesView payload) const {
  return LightningSealer{secret_, src}.seal(payload);
}

bool LightningFilter::reclaim(SimTime now) {
  // Two ordered passes: first the sources that never authenticated (a
  // spoofed flood's residue), then any idle source. Ordered iteration so
  // which entry goes first is a pure function of the table's contents.
  bool freed = false;
  for (const bool authenticated_too : {false, true}) {
    for (auto it = sources_.begin(); it != sources_.end();) {
      const bool idle = it->second.last_seen + config_.idle_timeout <= now;
      if (idle && (authenticated_too || !it->second.authenticated)) {
        it = sources_.erase(it);
        freed = true;
      } else {
        ++it;
      }
    }
    if (freed) return true;
  }
  return false;
}

LightningFilter::SourceState* LightningFilter::source_state(IsdAs src,
                                                            SimTime now) {
  const std::uint64_t key = src.packed();
  const auto it = sources_.find(key);
  if (it != sources_.end()) {
    it->second.last_seen = now;
    return &it->second;
  }
  if (config_.max_sources > 0 && sources_.size() >= config_.max_sources &&
      !reclaim(now)) {
    return nullptr;  // table full of live sources: overflow drop
  }
  // Admission of a new source AS is the one place the key schedule runs:
  // bounded by max_sources, never per packet.
  auto inserted = sources_.emplace(
      key,
      // NOLINTNEXTLINE(percall-keyschedule) once per admitted source AS
      SourceState{crypto::AesCmac{key_for(src)}, Bucket{}, now, false});
  return &inserted.first->second;
}

LightningFilter::Verdict LightningFilter::check(
    const dataplane::ScionPacket& packet, SimTime now) {
  return check(packet.src.ia, packet.payload, now);
}

LightningFilter::Verdict LightningFilter::check(IsdAs src, BytesView payload,
                                                SimTime now) {
  // AS-level allow rule — no per-source state for rule-dropped traffic.
  if (!config_.allowed_sources.empty() &&
      std::find(config_.allowed_sources.begin(),
                config_.allowed_sources.end(),
                src) == config_.allowed_sources.end()) {
    dropped_rule_->inc();
    return Verdict::kDropRule;
  }
  SourceState* state = source_state(src, now);
  if (state == nullptr) {
    dropped_overflow_->inc();
    return Verdict::kDropOverflow;
  }
  // Authentication: payload must end with a valid 16-byte CMAC, verified
  // against the cached per-source context.
  if (config_.require_auth) {
    if (payload.size() < 16) {
      dropped_auth_->inc();
      return Verdict::kDropAuth;
    }
    const BytesView body{payload.data(), payload.size() - 16};
    const BytesView tag{payload.data() + payload.size() - 16, 16};
    if (!state->cmac.verify(body, tag)) {
      dropped_auth_->inc();
      return Verdict::kDropAuth;
    }
    state->authenticated = true;
  }
  // Per-source rate limit (token bucket).
  if (config_.rate_pps > 0) {
    Bucket& bucket = state->bucket;
    const double elapsed =
        static_cast<double>(now - bucket.last) / static_cast<double>(kSecond);
    bucket.tokens = std::min(config_.burst,
                             bucket.tokens + elapsed * config_.rate_pps);
    bucket.last = now;
    if (bucket.tokens < 1.0) {
      dropped_rate_->inc();
      return Verdict::kDropRate;
    }
    bucket.tokens -= 1.0;
  }
  accepted_->inc();
  return Verdict::kAccept;
}

double LightningFilter::throughput_bps(std::size_t packet_bytes,
                                       bool rss) const {
  const double cores = rss ? config_.cores : 1;
  return config_.per_core_pps * cores *
         static_cast<double>(packet_bytes) * 8.0;
}

}  // namespace sciera::endhost
