#include "endhost/lightning_filter.h"

#include <algorithm>

#include "crypto/hmac.h"

namespace sciera::endhost {

LightningFilter::LightningFilter(BytesView filter_secret, Config config)
    : secret_(filter_secret.begin(), filter_secret.end()),
      config_(std::move(config)) {
  auto& registry = obs::MetricsRegistry::global();
  const obs::Labels base{
      {"filter", registry.instance_label("lightning_filter", "lf")}};
  accepted_ = &registry.counter("sciera_filter_accepted_total", base);
  const auto dropped = [&](const char* reason) {
    obs::Labels labels = base;
    labels.emplace_back("reason", reason);
    return &registry.counter("sciera_filter_dropped_total", labels);
  };
  dropped_rule_ = dropped("rule");
  dropped_auth_ = dropped("auth");
  dropped_rate_ = dropped("rate");
}

LightningFilter::Stats LightningFilter::stats() const {
  return Stats{accepted_->value(), dropped_rule_->value(),
               dropped_auth_->value(), dropped_rate_->value()};
}

crypto::Aes128::Key LightningFilter::key_for(IsdAs src) const {
  Writer w;
  w.str("lightning-drkey-v1");
  w.u64(src.packed());
  Bytes input = secret_;
  const Bytes label = std::move(w).take();
  const auto digest = crypto::hmac_sha256(input, label);
  crypto::Aes128::Key key{};
  std::copy_n(digest.begin(), key.size(), key.begin());
  return key;
}

Bytes LightningFilter::make_authenticator(IsdAs src, BytesView payload) const {
  const crypto::AesCmac cmac{key_for(src)};
  const auto mac = cmac.compute(payload);
  return Bytes{mac.begin(), mac.end()};
}

LightningFilter::Verdict LightningFilter::check(
    const dataplane::ScionPacket& packet, SimTime now) {
  // AS-level allow rule.
  if (!config_.allowed_sources.empty() &&
      std::find(config_.allowed_sources.begin(),
                config_.allowed_sources.end(),
                packet.src.ia) == config_.allowed_sources.end()) {
    dropped_rule_->inc();
    return Verdict::kDropRule;
  }
  // Authentication: payload must end with a valid 16-byte CMAC.
  if (config_.require_auth) {
    if (packet.payload.size() < 16) {
      dropped_auth_->inc();
      return Verdict::kDropAuth;
    }
    const BytesView body{packet.payload.data(), packet.payload.size() - 16};
    const BytesView tag{packet.payload.data() + packet.payload.size() - 16,
                        16};
    const crypto::AesCmac cmac{key_for(packet.src.ia)};
    if (!cmac.verify(body, tag)) {
      dropped_auth_->inc();
      return Verdict::kDropAuth;
    }
  }
  // Per-source rate limit (token bucket).
  if (config_.rate_pps > 0) {
    Bucket& bucket = buckets_[packet.src.ia.packed()];
    const double elapsed =
        static_cast<double>(now - bucket.last) / static_cast<double>(kSecond);
    bucket.tokens = std::min(config_.burst,
                             bucket.tokens + elapsed * config_.rate_pps);
    bucket.last = now;
    if (bucket.tokens < 1.0) {
      dropped_rate_->inc();
      return Verdict::kDropRate;
    }
    bucket.tokens -= 1.0;
  }
  accepted_->inc();
  return Verdict::kAccept;
}

double LightningFilter::throughput_bps(std::size_t packet_bytes,
                                       bool rss) const {
  const double cores = rss ? config_.cores : 1;
  return config_.per_core_pps * cores *
         static_cast<double>(packet_bytes) * 8.0;
}

}  // namespace sciera::endhost
