#include "endhost/pan.h"

namespace sciera::endhost {

const char* stack_mode_name(StackMode mode) {
  switch (mode) {
    case StackMode::kDaemonDependent: return "daemon-dependent";
    case StackMode::kBootstrapperDependent: return "bootstrapper-dependent";
    case StackMode::kStandalone: return "standalone";
  }
  return "?";
}

PanContext::PanContext(HostEnvironment env, StackMode mode)
    : env_(std::move(env)), mode_(mode) {
  stack_ = std::make_unique<HostStack>(*env_.net, env_.address,
                                       env_.stack_config);
}

Result<std::unique_ptr<PanContext>> PanContext::Builder::build(Rng rng) {
  return PanContext::create_validated(std::move(env_), std::move(rng));
}

Result<std::unique_ptr<PanContext>> PanContext::create(HostEnvironment env,
                                                       Rng rng) {
  // Deprecated shim: same validation as the Builder so legacy call sites
  // cannot sneak an invalid environment past it either.
  return create_validated(std::move(env), std::move(rng));
}

Result<std::unique_ptr<PanContext>> PanContext::create_validated(
    HostEnvironment env, Rng rng) {
  if (env.net == nullptr) {
    return Error{Errc::kInvalidArgument, "no network in host environment"};
  }
  if (env.net->topology().find_as(env.address.ia) == nullptr) {
    return Error{Errc::kInvalidArgument,
                 "host address " + env.address.to_string() +
                     " names an AS outside the topology"};
  }
  if (env.daemon != nullptr && env.daemon->isd_as() != env.address.ia) {
    return Error{Errc::kInvalidArgument,
                 "daemon serves " + env.daemon->isd_as().to_string() +
                     " but host address is in " + env.address.ia.to_string()};
  }
  // Automatic fallback chain (Section 4.2.1).
  StackMode mode;
  if (env.daemon != nullptr) {
    mode = StackMode::kDaemonDependent;
  } else if (env.bootstrapper_state != nullptr) {
    mode = StackMode::kBootstrapperDependent;
  } else {
    mode = StackMode::kStandalone;
  }
  auto ctx = std::unique_ptr<PanContext>(new PanContext(std::move(env), mode));
  if (mode == StackMode::kStandalone) {
    if (ctx->env_.bootstrap_server == nullptr) {
      return Error{Errc::kUnreachable,
                   "standalone mode needs a reachable bootstrap server"};
    }
    Bootstrapper bootstrapper{ctx->env_.network_env, ctx->env_.os};
    auto result = bootstrapper.run(*ctx->env_.bootstrap_server, rng,
                                   ctx->env_.net->sim().now());
    if (!result) return result.error();
    ctx->bootstrap_time_ = result->timings.total();
    ctx->own_bootstrap_ = std::move(result).value();
  }
  return ctx;
}

std::vector<controlplane::Path> PanContext::paths(IsdAs dst,
                                                  const PathPolicy& policy) {
  std::vector<controlplane::Path> raw;
  if (mode_ == StackMode::kDaemonDependent) {
    raw = env_.daemon->paths(dst);
  } else {
    // Without a daemon the library talks to the replicated control
    // service itself (first-available failover) and applies its private
    // liveness table.
    auto* services = env_.net->control_service_set(env_.address.ia);
    raw = services->lookup_paths_now(dst);
    std::erase_if(raw, [this](const controlplane::Path& path) {
      const auto it = down_until_.find(path.fingerprint());
      return it != down_until_.end() && env_.net->sim().now() < it->second;
    });
  }
  return policy.apply(std::move(raw));
}

void PanContext::report_path_down(const std::string& fingerprint) {
  if (mode_ == StackMode::kDaemonDependent) {
    env_.daemon->report_path_down(fingerprint);
  } else {
    down_until_[fingerprint] = env_.net->sim().now() + 90 * kSecond;
  }
  // A pinned path must not survive its own down report: otherwise the pin
  // silently resurrects the dead path as soon as its link flaps back up,
  // overriding the liveness table the report just updated.
  for (PanSocket* socket : sockets_) socket->unpin_fingerprint(fingerprint);
}

void PanContext::register_socket(PanSocket* socket) {
  sockets_.push_back(socket);
}

void PanContext::unregister_socket(PanSocket* socket) {
  std::erase(sockets_, socket);
}

Result<Duration> PanContext::handle_network_change(Rng& rng) {
  switch (mode_) {
    case StackMode::kDaemonDependent:
      // The shared daemon re-bootstraps once for every app: free here.
      env_.daemon->flush_cache();
      return Duration{0};
    case StackMode::kBootstrapperDependent:
      // The shared bootstrapper refreshes its state: apps only flush.
      return Duration{0};
    case StackMode::kStandalone: {
      // Each application must detect the change and re-bootstrap itself —
      // the inefficiency Section 4.2.1 calls out.
      if (env_.bootstrap_server == nullptr) {
        return Error{Errc::kUnreachable, "no bootstrap server"};
      }
      Bootstrapper bootstrapper{env_.network_env, env_.os};
      auto result = bootstrapper.run(*env_.bootstrap_server, rng,
                                     env_.net->sim().now());
      if (!result) return result.error();
      bootstrap_time_ = result->timings.total();
      own_bootstrap_ = std::move(result).value();
      return bootstrap_time_;
    }
  }
  return Error{Errc::kInternal, "unreachable"};
}

PanSocket::PanSocket(PanContext& ctx, std::uint16_t port)
    : ctx_(ctx), port_(port) {}

Result<std::unique_ptr<PanSocket>> PanSocket::open(PanContext& ctx,
                                                   std::uint16_t port,
                                                   Handler handler) {
  auto bound = ctx.stack().bind(
      port, [handler = std::move(handler)](
                const dataplane::ScionPacket& packet,
                const dataplane::UdpDatagram& datagram, SimTime arrival) {
        handler(packet.src, datagram.src_port, datagram.data, arrival);
      });
  if (!bound) return bound.error();
  auto socket = std::unique_ptr<PanSocket>(new PanSocket(ctx, bound.value()));
  ctx.register_socket(socket.get());
  return socket;
}

PanSocket::~PanSocket() {
  ctx_.unregister_socket(this);
  ctx_.stack().unbind(port_);
}

Status PanSocket::select_path(IsdAs dst, std::size_t index) {
  const auto options = ctx_.paths(dst, policy_);
  if (index >= options.size()) {
    return Error{Errc::kNotFound,
                 "path index " + std::to_string(index) + " out of range (" +
                     std::to_string(options.size()) + " paths)"};
  }
  pinned_[dst] = options[index];
  return {};
}

Result<PanSocket::ResolvedPath> PanSocket::resolve_path(IsdAs dst) {
  const auto pin = pinned_.find(dst);
  if (pin != pinned_.end() && ctx_.network().path_usable(pin->second)) {
    return ResolvedPath{pin->second, false};
  }
  auto options = ctx_.paths(dst, policy_);
  std::erase_if(options, [this](const controlplane::Path& path) {
    return !ctx_.network().path_usable(path);
  });
  if (options.empty()) {
    return Error{Errc::kUnreachable, "no usable path to " + dst.to_string()};
  }
  // A substitution only counts as failover when a pin existed and was
  // skipped; the everyday no-pin case is just path selection.
  return ResolvedPath{options.front(), pin != pinned_.end()};
}

Result<controlplane::Path> PanSocket::current_path(IsdAs dst) {
  auto resolved = resolve_path(dst);
  if (!resolved) return resolved.error();
  return std::move(resolved->path);
}

void PanSocket::unpin_fingerprint(const std::string& fingerprint) {
  std::erase_if(pinned_, [&fingerprint](const auto& entry) {
    return entry.second.fingerprint() == fingerprint;
  });
}

Result<SendReceipt> PanSocket::send_to(const dataplane::Address& dst,
                                       std::uint16_t dst_port, BytesView data) {
  SendReceipt receipt;
  receipt.mode = ctx_.mode();
  dataplane::ScionPacket packet;
  packet.dst = dst;
  packet.next_hdr = dataplane::kProtoUdp;
  if (dst.ia == ctx_.local_address().ia) {
    // Intra-AS: empty path, plain IP underlay.
    packet.path_type = dataplane::PathType::kEmpty;
  } else {
    auto resolved = resolve_path(dst.ia);
    if (!resolved) return resolved.error();
    receipt.path_fingerprint = resolved->path.fingerprint();
    receipt.failover = resolved->failover;
    packet.path = std::move(resolved->path.dataplane_path);
  }
  dataplane::UdpDatagram datagram;
  datagram.src_port = port_;
  datagram.dst_port = dst_port;
  datagram.data = Bytes{data.begin(), data.end()};
  packet.payload = datagram.serialize();
  receipt.bytes_queued = packet.wire_size();
  ++sent_;
  if (auto status = ctx_.stack().send(std::move(packet)); !status.ok()) {
    return status.error();
  }
  return receipt;
}

}  // namespace sciera::endhost
