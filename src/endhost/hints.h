// Bootstrapping hint discovery (Section 4.1, Appendix A): the mechanisms a
// fresh end host can use to find the bootstrapping server without manual
// configuration, each piggybacking on protocols already present in the
// network (DHCP, NDP, DNS). Availability follows Table 2; retrieval cost
// is modelled as the mechanism's real message exchanges over the local
// network plus per-OS stack overhead.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace sciera::endhost {

enum class HintMechanism : std::uint8_t {
  kDhcpVivo,      // DHCPv4 Vendor-Identifying Vendor Option (RFC 3925)
  kDhcpOption72,  // DHCPv4 "Default WWW server" fallback option
  kDhcpv6Vsio,    // DHCPv6 Vendor-Specific Information Option (RFC 3315)
  kIpv6Ndp,       // RA-delivered DNS config (RFC 6106) + DNS lookup
  kDnsSrv,        // _sciondiscovery._tcp SRV (RFC 2782)
  kDnsNaptr,      // x-sciondiscovery NAPTR (RFC 2915)
  kDnsSd,         // DNS-SD PTR -> SRV (RFC 6763)
  kMdns,          // multicast DNS (RFC 6762)
};

[[nodiscard]] const char* hint_mechanism_name(HintMechanism mechanism);
[[nodiscard]] std::vector<HintMechanism> all_hint_mechanisms();

// What zero-conf machinery exists in the network a host joins (the columns
// of Table 2).
struct NetworkEnvironment {
  bool static_ips_only = false;
  bool dhcp_leases = true;          // dynamic DHCPv4
  bool dhcpv6_leases = false;
  bool ipv6_ras = false;            // IPv6 RAs with DNS options
  bool local_dns_search_domain = true;
  bool multicast_allowed = true;
  // Operator actually configured the hint on each channel:
  bool dhcp_hint_configured = true;
  bool dhcpv6_hint_configured = false;
  bool dns_hints_configured = true;
  bool mdns_responder_present = false;
  // One-way latency to local infrastructure servers (DHCP/DNS/bootstrap).
  Duration lan_one_way = 400 * kMicrosecond;
};

// Table 2: is the mechanism available ("Y"/"M") in this environment?
[[nodiscard]] bool mechanism_available(HintMechanism mechanism,
                                       const NetworkEnvironment& env);

// OS profile: per-message-exchange stack overhead (socket setup, service
// round trips, API layers) — why the Figure 4 boxes differ per OS.
struct OsProfile {
  std::string name;
  Duration syscall_overhead;   // per network operation
  Duration service_overhead;   // OS service indirection (e.g. resolver svc)
  double variance_sigma;       // log-normal spread of the above
};

[[nodiscard]] OsProfile windows_profile();
[[nodiscard]] OsProfile linux_profile();
[[nodiscard]] OsProfile macos_profile();
[[nodiscard]] std::vector<OsProfile> all_os_profiles();

// Number of request/response exchanges on the LAN each mechanism needs
// (DHCP INFORM, DNS queries, mDNS multicast...).
[[nodiscard]] int mechanism_round_trips(HintMechanism mechanism);

// Samples the time to retrieve the bootstrapping hint.
[[nodiscard]] Duration sample_hint_latency(HintMechanism mechanism,
                                           const NetworkEnvironment& env,
                                           const OsProfile& os, Rng& rng);

}  // namespace sciera::endhost
