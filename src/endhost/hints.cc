#include "endhost/hints.h"

namespace sciera::endhost {

const char* hint_mechanism_name(HintMechanism mechanism) {
  switch (mechanism) {
    case HintMechanism::kDhcpVivo: return "DHCP-VIVO";
    case HintMechanism::kDhcpOption72: return "DHCP-opt72";
    case HintMechanism::kDhcpv6Vsio: return "DHCPv6-VSIO";
    case HintMechanism::kIpv6Ndp: return "IPv6-NDP";
    case HintMechanism::kDnsSrv: return "DNS-SRV";
    case HintMechanism::kDnsNaptr: return "DNS-NAPTR";
    case HintMechanism::kDnsSd: return "DNS-SD";
    case HintMechanism::kMdns: return "mDNS";
  }
  return "?";
}

std::vector<HintMechanism> all_hint_mechanisms() {
  return {HintMechanism::kDhcpVivo,  HintMechanism::kDhcpOption72,
          HintMechanism::kDhcpv6Vsio, HintMechanism::kIpv6Ndp,
          HintMechanism::kDnsSrv,     HintMechanism::kDnsNaptr,
          HintMechanism::kDnsSd,      HintMechanism::kMdns};
}

bool mechanism_available(HintMechanism mechanism,
                         const NetworkEnvironment& env) {
  // Encodes Table 2 of the paper, plus whether the operator configured the
  // hint on that channel.
  const bool dns_usable =
      env.local_dns_search_domain && env.dns_hints_configured;
  switch (mechanism) {
    case HintMechanism::kDhcpVivo:
    case HintMechanism::kDhcpOption72:
      return !env.static_ips_only && env.dhcp_leases &&
             env.dhcp_hint_configured;
    case HintMechanism::kDhcpv6Vsio:
      return !env.static_ips_only && env.dhcpv6_leases &&
             env.dhcpv6_hint_configured;
    case HintMechanism::kIpv6Ndp:
      // Needs RAs carrying DNS config, then the DNS-based discovery.
      return env.ipv6_ras && dns_usable;
    case HintMechanism::kDnsSrv:
    case HintMechanism::kDnsNaptr:
    case HintMechanism::kDnsSd:
      return dns_usable;
    case HintMechanism::kMdns:
      return env.multicast_allowed && env.mdns_responder_present;
  }
  return false;
}

OsProfile windows_profile() {
  // Service-based resolver and DHCP client add indirection.
  return OsProfile{"Windows", 180 * kMicrosecond, 1200 * kMicrosecond, 0.45};
}

OsProfile linux_profile() {
  return OsProfile{"Linux", 60 * kMicrosecond, 250 * kMicrosecond, 0.35};
}

OsProfile macos_profile() {
  return OsProfile{"Mac", 90 * kMicrosecond, 600 * kMicrosecond, 0.40};
}

std::vector<OsProfile> all_os_profiles() {
  return {windows_profile(), linux_profile(), macos_profile()};
}

int mechanism_round_trips(HintMechanism mechanism) {
  switch (mechanism) {
    case HintMechanism::kDhcpVivo: return 2;      // DISCOVER/OFFER+REQ/ACK reuse: INFORM/ACK x2
    case HintMechanism::kDhcpOption72: return 2;
    case HintMechanism::kDhcpv6Vsio: return 2;    // INFORMATION-REQUEST/REPLY
    case HintMechanism::kIpv6Ndp: return 3;       // RS/RA + 2 DNS queries
    case HintMechanism::kDnsSrv: return 2;        // SRV + A
    case HintMechanism::kDnsNaptr: return 3;      // NAPTR + SRV + A
    case HintMechanism::kDnsSd: return 3;         // PTR + SRV + A
    case HintMechanism::kMdns: return 2;          // multicast query + A
  }
  return 2;
}

Duration sample_hint_latency(HintMechanism mechanism,
                             const NetworkEnvironment& env,
                             const OsProfile& os, Rng& rng) {
  const int rtts = mechanism_round_trips(mechanism);
  double total_ms = 0.0;
  for (int i = 0; i < rtts; ++i) {
    const double wire_ms = to_ms(2 * env.lan_one_way) *
                           rng.lognormal_median(1.0, 0.25);
    const double stack_ms =
        to_ms(os.syscall_overhead + os.service_overhead) *
        rng.lognormal_median(1.0, os.variance_sigma);
    total_ms += wire_ms + stack_ms;
  }
  // mDNS waits a short aggregation interval for responders.
  if (mechanism == HintMechanism::kMdns) {
    total_ms += rng.uniform(20.0, 120.0);
  }
  return from_ms(total_ms);
}

}  // namespace sciera::endhost
