// Happy Eyeballs with SCION as a third option (Section 4.2.2): "Adding
// SCION as a third option to this library would immediately enable all
// applications using it to communicate through SCION, if available and
// supported by the destination." Races connection attempts over SCION,
// IPv6 and IPv4 with the RFC 8305 staggered start, preferring SCION when
// it answers within the stagger budget.
#pragma once

#include "bgp/bgp.h"
#include "endhost/daemon.h"

namespace sciera::endhost {

enum class Transport : std::uint8_t { kScion, kIpv6, kIpv4 };

[[nodiscard]] const char* transport_name(Transport transport);

struct DialResult {
  Transport chosen = Transport::kIpv4;
  Duration connect_time = 0;   // time until the winning handshake completed
  Duration first_rtt = 0;      // RTT of the winning transport
  int attempts_started = 0;
};

class HappyEyeballs {
 public:
  struct Config {
    // RFC 8305 "Connection Attempt Delay" between staggered starts;
    // preference order is SCION, IPv6, IPv4.
    Duration attempt_delay = 250 * kMillisecond;
    // Give up on a transport after this long.
    Duration attempt_timeout = 2 * kSecond;
    bool scion_enabled = true;
    bool ipv6_enabled = true;
  };

  HappyEyeballs(controlplane::ScionNetwork& net, bgp::BgpNetwork& bgp,
                Config config);
  HappyEyeballs(controlplane::ScionNetwork& net, bgp::BgpNetwork& bgp)
      : HappyEyeballs(net, bgp, Config{}) {}

  // Simulated dial: starts staggered attempts and returns the transport
  // that completes its handshake first. SCION availability requires a
  // usable path; v6/v4 require BGP reachability (v6 modelled as the same
  // route with a small extra setup cost, as dual-stack deployments see).
  [[nodiscard]] Result<DialResult> dial(IsdAs src, IsdAs dst, Rng& rng);

 private:
  struct Attempt {
    Transport transport;
    SimTime start = 0;
    std::optional<Duration> handshake;  // nullopt: transport unavailable
  };

  [[nodiscard]] std::optional<Duration> scion_handshake(IsdAs src, IsdAs dst,
                                                        Rng& rng) const;
  [[nodiscard]] std::optional<Duration> ip_handshake(IsdAs src, IsdAs dst,
                                                     bool v6, Rng& rng) const;

  controlplane::ScionNetwork& net_;
  bgp::BgpNetwork& bgp_;
  Config config_;
};

}  // namespace sciera::endhost
