#include "endhost/traceroute.h"

namespace sciera::endhost {

std::vector<TracerouteHop> Traceroute::run(const dataplane::Address& dst,
                                           const controlplane::Path& path) {
  std::vector<TracerouteHop> hops;
  auto& sim = stack_.network().sim();

  struct Response {
    bool received = false;
    IsdAs origin;
    bool echo_reply = false;
    SimTime at = 0;
  };
  Response response;

  stack_.set_scmp_receiver([&response](const dataplane::ScionPacket& packet,
                                       const dataplane::ScmpMessage& message,
                                       SimTime arrival) {
    if (message.type == dataplane::ScmpType::kHopLimitExceeded) {
      response.received = true;
      response.origin = IsdAs::from_packed(message.origin_ia);
      response.echo_reply = false;
      response.at = arrival;
    } else if (message.type == dataplane::ScmpType::kEchoReply) {
      response.received = true;
      response.origin = packet.src.ia;
      response.echo_reply = true;
      response.at = arrival;
    }
  });

  // The number of forwarding ASes is one less than the AS count; the
  // destination answers the final echo itself.
  const int max_hops = static_cast<int>(path.as_sequence.size()) + 1;
  for (int ttl = 1; ttl <= max_hops; ++ttl) {
    response = Response{};
    dataplane::ScionPacket probe;
    probe.dst = dst;
    probe.next_hdr = dataplane::kProtoScmp;
    probe.hop_limit = static_cast<std::uint8_t>(ttl);
    probe.path = path.dataplane_path;
    probe.payload = dataplane::make_echo_request(
                        config_.identifier, static_cast<std::uint16_t>(ttl))
                        .serialize();
    const SimTime sent = sim.now();
    if (!stack_.send(std::move(probe)).ok()) break;
    const SimTime deadline = sent + config_.probe_timeout;
    while (!response.received && sim.now() < deadline) {
      sim.run_for(10 * kMillisecond);
    }

    TracerouteHop hop;
    hop.position = ttl;
    if (!response.received) {
      hop.timed_out = true;
      hops.push_back(hop);
      continue;
    }
    hop.ia = response.origin;
    hop.rtt = response.at - sent;
    hop.is_destination = response.echo_reply;
    hops.push_back(hop);
    if (hop.is_destination) break;
  }

  stack_.set_scmp_receiver({});
  return hops;
}

}  // namespace sciera::endhost
