// The PAN-style application library (Section 4.2): the drop-in socket API
// that makes applications SCION-aware with a handful of lines (Section
// 5.2's bat/Caddy/netcat case studies). The library resolves its
// operating mode automatically (Section 4.2.1):
//
//   daemon-dependent      — a daemon is running; use it for paths/TRCs.
//   bootstrapper-dependent — no daemon, but a pre-installed bootstrapper
//                            left configuration behind.
//   standalone            — nothing installed: the library bootstraps
//                            itself in-process ("it will just work").
#pragma once

#include <memory>

#include "endhost/bootstrapper.h"
#include "endhost/daemon.h"
#include "endhost/dispatcher.h"
#include "endhost/policy.h"

namespace sciera::endhost {

enum class StackMode {
  kDaemonDependent,
  kBootstrapperDependent,
  kStandalone,
};

[[nodiscard]] const char* stack_mode_name(StackMode mode);

// Everything the library can probe on the host it runs on.
struct HostEnvironment {
  controlplane::ScionNetwork* net = nullptr;
  dataplane::Address address;
  Daemon* daemon = nullptr;                       // running daemon, if any
  const BootstrapResult* bootstrapper_state = nullptr;  // pre-installed
  const BootstrapServer* bootstrap_server = nullptr;    // reachable in-AS
  NetworkEnvironment network_env;
  OsProfile os = linux_profile();
  HostStack::Config stack_config;
};

class PanContext {
 public:
  // Resolves the mode and (in standalone mode) performs the in-app
  // bootstrap. "There is no need to explicitly choose a mode of
  // operation" — the fallback chain is automatic.
  static Result<std::unique_ptr<PanContext>> create(HostEnvironment env,
                                                    Rng rng);

  [[nodiscard]] StackMode mode() const { return mode_; }
  // Time the application spent bootstrapping (zero with a daemon).
  [[nodiscard]] Duration bootstrap_time() const { return bootstrap_time_; }
  [[nodiscard]] HostStack& stack() { return *stack_; }
  [[nodiscard]] controlplane::ScionNetwork& network() { return *env_.net; }
  [[nodiscard]] const dataplane::Address& local_address() const {
    return env_.address;
  }

  // Live paths toward dst under a policy (already sorted best-first).
  [[nodiscard]] std::vector<controlplane::Path> paths(
      IsdAs dst, const PathPolicy& policy = PathPolicy{});

  // Data-plane failure feedback propagated from sockets.
  void report_path_down(const std::string& fingerprint);

  // Network-change handling (Section 4.2.1: standalone mode re-bootstraps
  // per application). Returns the re-bootstrap cost.
  Result<Duration> handle_network_change(Rng& rng);

 private:
  PanContext(HostEnvironment env, StackMode mode);

  HostEnvironment env_;
  StackMode mode_;
  std::unique_ptr<HostStack> stack_;
  std::optional<BootstrapResult> own_bootstrap_;
  Duration bootstrap_time_ = 0;
  // Standalone/bootstrapper modes keep a private liveness table (no shared
  // daemon cache — the cost called out in Section 4.2.1).
  std::map<std::string, SimTime> down_until_;
};

// A drop-in UDP-style socket (Section 4.2.2): mirrors sendto/recvfrom
// while adding path awareness. Handles Layer-2.5 encapsulation, path
// selection under the configured policy, and failover.
class PanSocket {
 public:
  using Handler = std::function<void(const dataplane::Address& src,
                                     std::uint16_t src_port, const Bytes& data,
                                     SimTime arrival)>;

  // Binds `port` (0 = ephemeral) on the context's host stack.
  static Result<std::unique_ptr<PanSocket>> open(PanContext& ctx,
                                                 std::uint16_t port,
                                                 Handler handler);
  ~PanSocket();
  PanSocket(const PanSocket&) = delete;
  PanSocket& operator=(const PanSocket&) = delete;

  [[nodiscard]] std::uint16_t local_port() const { return port_; }

  void set_policy(PathPolicy policy) { policy_ = std::move(policy); }
  // Interactive path selection (the bat tool's --interactive flag): pin
  // the nth policy-admitted path for a destination.
  Status select_path(IsdAs dst, std::size_t index);
  void clear_selection(IsdAs dst) { pinned_.erase(dst); }
  // The path the next send to dst would use.
  [[nodiscard]] Result<controlplane::Path> current_path(IsdAs dst);

  Status send_to(const dataplane::Address& dst, std::uint16_t dst_port,
                 BytesView data);

  [[nodiscard]] std::uint64_t sent() const { return sent_; }

 private:
  PanSocket(PanContext& ctx, std::uint16_t port);

  PanContext& ctx_;
  std::uint16_t port_;
  PathPolicy policy_;
  std::map<IsdAs, controlplane::Path> pinned_;
  std::uint64_t sent_ = 0;
};

}  // namespace sciera::endhost
