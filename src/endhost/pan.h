// The PAN-style application library (Section 4.2): the drop-in socket API
// that makes applications SCION-aware with a handful of lines (Section
// 5.2's bat/Caddy/netcat case studies). The library resolves its
// operating mode automatically (Section 4.2.1):
//
//   daemon-dependent      — a daemon is running; use it for paths/TRCs.
//   bootstrapper-dependent — no daemon, but a pre-installed bootstrapper
//                            left configuration behind.
//   standalone            — nothing installed: the library bootstraps
//                            itself in-process ("it will just work").
#pragma once

#include <memory>
#include <vector>

#include "endhost/bootstrapper.h"
#include "endhost/daemon.h"
#include "endhost/dispatcher.h"
#include "endhost/policy.h"

namespace sciera::endhost {

enum class StackMode {
  kDaemonDependent,
  kBootstrapperDependent,
  kStandalone,
};

[[nodiscard]] const char* stack_mode_name(StackMode mode);

// DEPRECATED: raw environment struct, superseded by PanContext::Builder.
// Nothing validates the pointers in here, which is how a daemon for the
// wrong AS once reached the data plane. Construction sites outside the
// library are flagged by sciera_lint (deprecated-api); the struct remains
// for one PR as a migration shim.
struct HostEnvironment {
  controlplane::ScionNetwork* net = nullptr;
  dataplane::Address address;
  Daemon* daemon = nullptr;                       // running daemon, if any
  const BootstrapResult* bootstrapper_state = nullptr;  // pre-installed
  const BootstrapServer* bootstrap_server = nullptr;    // reachable in-AS
  NetworkEnvironment network_env;
  OsProfile os = linux_profile();
  HostStack::Config stack_config;
};

class PanSocket;

class PanContext {
 public:
  // Validated construction: the only supported way to stand up a PAN
  // stack. Rejects a missing network, an address whose AS is not in the
  // topology, and a daemon serving a different AS than the address —
  // failures that the raw HostEnvironment shim let through silently.
  //
  //   auto ctx = PanContext::Builder{}
  //                  .net(network)
  //                  .address({ia, host})
  //                  .daemon(daemon)
  //                  .build(Rng{seed});
  class Builder {
   public:
    Builder& net(controlplane::ScionNetwork& net) {
      env_.net = &net;
      return *this;
    }
    Builder& address(const dataplane::Address& address) {
      env_.address = address;
      return *this;
    }
    Builder& daemon(Daemon& daemon) {
      env_.daemon = &daemon;
      return *this;
    }
    Builder& bootstrapper_state(const BootstrapResult& state) {
      env_.bootstrapper_state = &state;
      return *this;
    }
    Builder& bootstrap_server(const BootstrapServer& server) {
      env_.bootstrap_server = &server;
      return *this;
    }
    Builder& network_env(NetworkEnvironment network_env) {
      env_.network_env = std::move(network_env);
      return *this;
    }
    Builder& os(OsProfile os) {
      env_.os = os;
      return *this;
    }
    Builder& stack_config(HostStack::Config config) {
      env_.stack_config = config;
      return *this;
    }
    [[nodiscard]] Result<std::unique_ptr<PanContext>> build(Rng rng);

   private:
    HostEnvironment env_;
  };

  // DEPRECATED: unvalidated shim over Builder, kept for one PR so external
  // call sites can migrate. sciera_lint flags new uses (deprecated-api).
  static Result<std::unique_ptr<PanContext>> create(HostEnvironment env,
                                                    Rng rng);

  [[nodiscard]] StackMode mode() const { return mode_; }
  // Time the application spent bootstrapping (zero with a daemon).
  [[nodiscard]] Duration bootstrap_time() const { return bootstrap_time_; }
  [[nodiscard]] HostStack& stack() { return *stack_; }
  [[nodiscard]] controlplane::ScionNetwork& network() { return *env_.net; }
  [[nodiscard]] const dataplane::Address& local_address() const {
    return env_.address;
  }

  // Live paths toward dst under a policy (already sorted best-first).
  [[nodiscard]] std::vector<controlplane::Path> paths(
      IsdAs dst, const PathPolicy& policy = PathPolicy{});

  // Data-plane failure feedback propagated from sockets. Also un-pins the
  // path on every socket of this context that had it selected — a pinned
  // path must not survive its own down report.
  void report_path_down(const std::string& fingerprint);

  // Network-change handling (Section 4.2.1: standalone mode re-bootstraps
  // per application). Returns the re-bootstrap cost.
  Result<Duration> handle_network_change(Rng& rng);

 private:
  friend class PanSocket;
  PanContext(HostEnvironment env, StackMode mode);
  static Result<std::unique_ptr<PanContext>> create_validated(
      HostEnvironment env, Rng rng);

  void register_socket(PanSocket* socket);
  void unregister_socket(PanSocket* socket);

  HostEnvironment env_;
  StackMode mode_;
  std::unique_ptr<HostStack> stack_;
  std::optional<BootstrapResult> own_bootstrap_;
  Duration bootstrap_time_ = 0;
  // Standalone/bootstrapper modes keep a private liveness table (no shared
  // daemon cache — the cost called out in Section 4.2.1).
  std::map<std::string, SimTime> down_until_;
  // Open sockets, so down reports can invalidate their pinned paths.
  std::vector<PanSocket*> sockets_;
};

// What a send actually did: which path carried the datagram, which stack
// mode served it, and whether the library had to substitute a different
// path for a pinned-but-unusable one. Applications that care about path
// stability (the gaming case study) read `failover`; everyone else can
// ignore the receipt.
struct SendReceipt {
  std::string path_fingerprint;  // empty for intra-AS (empty-path) sends
  StackMode mode = StackMode::kStandalone;
  std::size_t bytes_queued = 0;  // wire size handed to the host stack
  bool failover = false;         // pinned path was down; substitute used
};

// A drop-in UDP-style socket (Section 4.2.2): mirrors sendto/recvfrom
// while adding path awareness. Handles Layer-2.5 encapsulation, path
// selection under the configured policy, and failover.
class PanSocket {
 public:
  using Handler = std::function<void(const dataplane::Address& src,
                                     std::uint16_t src_port, const Bytes& data,
                                     SimTime arrival)>;

  // Binds `port` (0 = ephemeral) on the context's host stack.
  static Result<std::unique_ptr<PanSocket>> open(PanContext& ctx,
                                                 std::uint16_t port,
                                                 Handler handler);
  ~PanSocket();
  PanSocket(const PanSocket&) = delete;
  PanSocket& operator=(const PanSocket&) = delete;

  [[nodiscard]] std::uint16_t local_port() const { return port_; }

  void set_policy(PathPolicy policy) { policy_ = std::move(policy); }
  // Interactive path selection (the bat tool's --interactive flag): pin
  // the nth policy-admitted path for a destination.
  Status select_path(IsdAs dst, std::size_t index);
  void clear_selection(IsdAs dst) { pinned_.erase(dst); }
  // The path the next send to dst would use.
  [[nodiscard]] Result<controlplane::Path> current_path(IsdAs dst);

  // Queues `data` toward dst and reports what was done with it (path
  // fingerprint, stack mode, bytes queued, failover substitution).
  Result<SendReceipt> send_to(const dataplane::Address& dst,
                              std::uint16_t dst_port, BytesView data);

  [[nodiscard]] std::uint64_t sent() const { return sent_; }

 private:
  friend class PanContext;
  PanSocket(PanContext& ctx, std::uint16_t port);

  struct ResolvedPath {
    controlplane::Path path;
    bool failover = false;  // pinned path skipped as unusable
  };
  [[nodiscard]] Result<ResolvedPath> resolve_path(IsdAs dst);
  // Drops any pinned path with this fingerprint (down-report feedback).
  void unpin_fingerprint(const std::string& fingerprint);

  PanContext& ctx_;
  std::uint16_t port_;
  PathPolicy policy_;
  std::map<IsdAs, controlplane::Path> pinned_;
  std::uint64_t sent_ = 0;
};

}  // namespace sciera::endhost
