// SCION traceroute: walks a concrete path hop by hop using expiring hop
// limits, revealing which AS answers at each position and its RTT — the
// path-debugging companion to `showpaths` (operators' first tool when a
// Section 4.4 alert fires).
#pragma once

#include "endhost/dispatcher.h"

namespace sciera::endhost {

struct TracerouteHop {
  int position = 0;      // 1-based hop index
  IsdAs ia;              // answering AS
  Duration rtt = 0;
  bool is_destination = false;
  bool timed_out = false;
};

class Traceroute {
 public:
  struct Config {
    Duration probe_timeout = 3 * kSecond;
    std::uint16_t identifier = 0x7EAC;
  };

  // The host stack must have no other SCMP receiver attached while a
  // traceroute runs (the utility installs and removes its own).
  Traceroute(HostStack& stack, Config config) : stack_(stack), config_(config) {}
  explicit Traceroute(HostStack& stack) : Traceroute(stack, Config{}) {}

  // Probes `path` toward dst, driving the simulator. One probe per hop,
  // sequentially, like the classic utility.
  [[nodiscard]] std::vector<TracerouteHop> run(
      const dataplane::Address& dst, const controlplane::Path& path);

 private:
  HostStack& stack_;
  Config config_;
};

}  // namespace sciera::endhost
