#include "endhost/happy_eyeballs.h"

#include <cmath>

namespace sciera::endhost {

const char* transport_name(Transport transport) {
  switch (transport) {
    case Transport::kScion: return "scion";
    case Transport::kIpv6: return "ipv6";
    case Transport::kIpv4: return "ipv4";
  }
  return "?";
}

HappyEyeballs::HappyEyeballs(controlplane::ScionNetwork& net,
                             bgp::BgpNetwork& bgp, Config config)
    : net_(net), bgp_(bgp), config_(config) {}

namespace {

// Local RTT sampler (propagation + hop-scaled log-normal jitter); the
// measurement module has a richer version, but endhost cannot depend on it.
Duration sample(Duration base, std::size_t hops, double sigma, Rng& rng) {
  const double scaled =
      sigma * std::sqrt(static_cast<double>(std::max<std::size_t>(hops, 1)));
  return static_cast<Duration>(static_cast<double>(base) *
                               rng.lognormal_median(1.0, scaled));
}

}  // namespace

std::optional<Duration> HappyEyeballs::scion_handshake(IsdAs src, IsdAs dst,
                                                       Rng& rng) const {
  if (!config_.scion_enabled) return std::nullopt;
  for (const auto& path : net_.paths(src, dst)) {
    if (!net_.path_usable(path)) continue;
    // 1-RTT handshake over the chosen path.
    return sample(path.static_rtt, path.as_sequence.size(), 0.02, rng);
  }
  return std::nullopt;
}

std::optional<Duration> HappyEyeballs::ip_handshake(IsdAs src, IsdAs dst,
                                                    bool v6, Rng& rng) const {
  const auto rtt = bgp_.rtt(src, dst);
  if (!rtt) return std::nullopt;
  const auto* route = bgp_.route(src, dst);
  Duration handshake = sample(*rtt, route->as_path.size(), 0.03, rng);
  // Dual-stack deployments routinely see slightly different v6 behaviour;
  // model a small extra setup cost and occasional brokenness.
  if (v6) {
    if (rng.chance(0.05)) return std::nullopt;  // broken v6 path
    handshake += from_ms(rng.uniform(0.0, 3.0));
  }
  return handshake;
}

Result<DialResult> HappyEyeballs::dial(IsdAs src, IsdAs dst, Rng& rng) {
  struct Candidate {
    Transport transport;
    Duration start_offset;
    std::optional<Duration> handshake;
  };
  std::vector<Candidate> candidates;
  Duration offset = 0;
  if (config_.scion_enabled) {
    candidates.push_back({Transport::kScion, offset,
                          scion_handshake(src, dst, rng)});
    offset += config_.attempt_delay;
  }
  if (config_.ipv6_enabled) {
    candidates.push_back({Transport::kIpv6, offset,
                          ip_handshake(src, dst, true, rng)});
    offset += config_.attempt_delay;
  }
  candidates.push_back({Transport::kIpv4, offset,
                        ip_handshake(src, dst, false, rng)});

  DialResult result;
  std::optional<Duration> best_completion;
  for (const auto& candidate : candidates) {
    ++result.attempts_started;
    if (!candidate.handshake) continue;
    if (*candidate.handshake > config_.attempt_timeout) continue;
    const Duration completion = candidate.start_offset + *candidate.handshake;
    if (!best_completion || completion < *best_completion) {
      best_completion = completion;
      result.chosen = candidate.transport;
      result.connect_time = completion;
      result.first_rtt = *candidate.handshake;
    }
  }
  if (!best_completion) {
    return Error{Errc::kUnreachable,
                 "no transport reached " + dst.to_string()};
  }
  return result;
}

}  // namespace sciera::endhost
