// The SCION daemon (Section 2, "End-host Stack"): the per-host control
// plane client. It consolidates path lookup and caching, keeps the TRC
// database, and tracks data-plane path liveness (SCMP feedback) so
// applications can fail over instantly.
//
// Resilience: path fetches against the AS's replicated control service
// carry a per-request timeout, bounded exponential backoff with
// deterministic jitter, and a per-(destination, replica) circuit breaker;
// lookups fail over across replicas in deterministic index order, and
// when every replica stays unreachable the daemon degrades gracefully by
// serving stale-but-marked cached paths, capped at max_stale_age (the
// paper's "apps keep working through control-plane maintenance"). All of it is sim-clock driven and replays from the seed.
// Scheduled retries capture `this`: the daemon must outlive any simulator
// events it has in flight (the same contract the async lookup always had).
#pragma once

#include <map>
#include <unordered_map>

#include "common/backoff.h"
#include "controlplane/control_plane.h"
#include "obs/metrics.h"

namespace sciera::endhost {

// Where a lookup's answer came from — the degradation ladder.
enum class PathSource : std::uint8_t {
  kFreshCache,   // daemon cache entry, age < ttl
  kFetched,      // the control service answered
  kStaleCache,   // service unreachable; expired entry served, marked stale
  kUnavailable,  // nothing to serve: fetch failed and no cached entry
};

[[nodiscard]] const char* path_source_name(PathSource source);

// A path lookup with its provenance. `stale` is the stale-but-marked bit:
// the caller knows it is riding cached state through an outage.
struct PathLookup {
  std::vector<controlplane::Path> paths;
  PathSource source = PathSource::kUnavailable;
  bool stale = false;
};

class Daemon {
 public:
  struct Resilience {
    // Master switch (the soak harness A/Bs survivability with it off).
    // Off reproduces the legacy client: no timeout, no retry, no breaker,
    // and a fetch failure answers empty instead of serving stale.
    bool enabled = true;
    // Per-request timeout on async control-service lookups. Normal
    // answers take ~1-80ms depending on core distance; anything slower
    // counts as a failure and triggers backoff.
    Duration lookup_timeout = 150 * kMillisecond;
    BackoffPolicy backoff{};
    CircuitBreaker::Config breaker{};
    // Degrade to an expired cache entry (marked stale) when the service
    // is unreachable or the breaker is open.
    bool serve_stale = true;
    // Ceiling on how old a stale entry may be and still be served: an
    // entry aged >= max_stale_age answers kUnavailable instead of
    // kStaleCache (degraded mode cannot ride arbitrarily old paths
    // forever). 0 disables the cap.
    Duration max_stale_age = 30 * kMinute;
  };

  struct Config {
    // An entry aged exactly path_cache_ttl is stale (the same boundary
    // convention as ControlService::Config::cache_ttl).
    Duration path_cache_ttl = 5 * kMinute;
    Duration down_path_penalty = 90 * kSecond;
    Resilience resilience{};
  };

  Daemon(controlplane::ScionNetwork& net, IsdAs ia, Config config);
  Daemon(controlplane::ScionNetwork& net, IsdAs ia)
      : Daemon(net, ia, Config{}) {}

  [[nodiscard]] IsdAs isd_as() const { return ia_; }

  // Live paths toward dst (cached; drops paths reported down).
  [[nodiscard]] std::vector<controlplane::Path> paths(IsdAs dst);
  // Same lookup with provenance (fresh/fetched/stale/unavailable).
  [[nodiscard]] PathLookup paths_detailed(IsdAs dst);

  // Asynchronous lookup sharing the exact same cache boundary, quarantine
  // pruning, and degradation ladder as paths()/paths_detailed(). With
  // resilience enabled the request is retried under backoff until the
  // breaker or attempt budget is exhausted, then degraded; with it
  // disabled an outage means the callback never fires (the legacy
  // behaviour the chaos campaigns exposed).
  void paths_async(IsdAs dst,
                   std::function<void(std::vector<controlplane::Path>)> cb);
  void paths_async_detailed(IsdAs dst, std::function<void(PathLookup)> cb);

  // The daemon's TRC database (fed from the local control service's ISD
  // plus any TRCs learned during bootstrap).
  [[nodiscard]] const cppki::Trc* trc(Isd isd) const;

  // SCMP feedback: a path failed on the data plane (e.g. external
  // interface down). It is quarantined for down_path_penalty.
  void report_path_down(const std::string& fingerprint);
  [[nodiscard]] bool path_alive(const controlplane::Path& path) const;

  // Thin reads of the registry-backed counters.
  [[nodiscard]] std::uint64_t lookups() const { return lookups_->value(); }
  [[nodiscard]] std::uint64_t cache_hits() const {
    return cache_hits_->value();
  }
  [[nodiscard]] std::uint64_t cache_misses() const {
    return cache_misses_->value();
  }
  // Degradation / error-budget reads.
  [[nodiscard]] std::uint64_t stale_served() const {
    return stale_served_->value();
  }
  [[nodiscard]] std::uint64_t degraded_empty() const {
    return degraded_empty_->value();
  }
  [[nodiscard]] std::uint64_t lookup_timeouts() const {
    return lookup_timeouts_->value();
  }
  [[nodiscard]] std::uint64_t lookup_retries() const {
    return lookup_retries_->value();
  }
  [[nodiscard]] std::uint64_t breaker_trips() const {
    return breaker_trips_->value();
  }
  // Currently quarantined fingerprints (expired entries are pruned on
  // every lookup and report, so this cannot grow without bound).
  [[nodiscard]] std::size_t quarantined() const { return down_until_.size(); }
  void flush_cache() { cache_.clear(); }

  // Stale-serving window bounds for the soak report: sim times of the
  // first and last stale answer this daemon served, -1 if it never did.
  [[nodiscard]] SimTime first_stale_at() const { return first_stale_at_; }
  [[nodiscard]] SimTime last_stale_at() const { return last_stale_at_; }

 private:
  struct CacheEntry {
    std::vector<controlplane::Path> paths;
    SimTime fetched_at = 0;
  };
  // One in-flight async lookup; shared by the answer, timeout, and
  // backoff closures so exactly one of them settles it.
  struct AsyncLookup {
    IsdAs dst;
    std::size_t attempts = 0;  // requests issued so far
    std::function<void(PathLookup)> cb;
  };

  [[nodiscard]] std::vector<controlplane::Path> filter_alive(
      std::vector<controlplane::Path> paths) const;
  // Erases quarantine entries whose penalty has elapsed.
  void prune_quarantine();
  // The shared lookup front half: prunes quarantine, counts the lookup,
  // and returns the cache entry iff it is fresh (age < ttl — stale at
  // age >= ttl, the boundary both sync and async paths share).
  [[nodiscard]] const CacheEntry* begin_lookup(IsdAs dst);
  // The shared degradation tail: stale-but-marked cache if allowed,
  // otherwise an explicit empty answer.
  [[nodiscard]] PathLookup degraded(IsdAs dst);
  // Replicas this daemon fails over across. Legacy mode (resilience
  // disabled) pins itself to the primary: the pre-replication client had
  // exactly one service and no failover.
  [[nodiscard]] std::size_t replica_count() const;
  // Breakers are per (destination, replica): one slow replica must not
  // poison lookups through its healthy peers, and one hard destination
  // must not poison others (the PR 4 isolation, now two-dimensional).
  [[nodiscard]] CircuitBreaker& breaker_for(IsdAs dst, std::size_t replica);
  void record_fetch_failure(IsdAs dst, std::size_t replica);
  void start_attempt(const std::shared_ptr<AsyncLookup>& lookup);

  controlplane::ScionNetwork& net_;
  IsdAs ia_;
  Config config_;
  controlplane::ControlServiceSet* services_;
  Rng rng_;
  std::unordered_map<IsdAs, CacheEntry> cache_;
  std::unordered_map<IsdAs, std::vector<CircuitBreaker>> breakers_;
  std::map<std::string, SimTime> down_until_;
  SimTime first_stale_at_ = -1;
  SimTime last_stale_at_ = -1;
  obs::Counter* lookups_ = nullptr;
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* cache_misses_ = nullptr;
  obs::Counter* stale_served_ = nullptr;
  obs::Counter* degraded_empty_ = nullptr;
  obs::Counter* lookup_timeouts_ = nullptr;
  obs::Counter* lookup_retries_ = nullptr;
  obs::Counter* breaker_trips_ = nullptr;
  obs::Gauge* quarantine_size_ = nullptr;
};

}  // namespace sciera::endhost
