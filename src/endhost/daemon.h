// The SCION daemon (Section 2, "End-host Stack"): the per-host control
// plane client. It consolidates path lookup and caching, keeps the TRC
// database, and tracks data-plane path liveness (SCMP feedback) so
// applications can fail over instantly.
#pragma once

#include <map>
#include <unordered_map>

#include "controlplane/control_plane.h"
#include "obs/metrics.h"

namespace sciera::endhost {

class Daemon {
 public:
  struct Config {
    // An entry aged exactly path_cache_ttl is stale (the same boundary
    // convention as ControlService::Config::cache_ttl).
    Duration path_cache_ttl = 5 * kMinute;
    Duration down_path_penalty = 90 * kSecond;
  };

  Daemon(controlplane::ScionNetwork& net, IsdAs ia, Config config);
  Daemon(controlplane::ScionNetwork& net, IsdAs ia)
      : Daemon(net, ia, Config{}) {}

  [[nodiscard]] IsdAs isd_as() const { return ia_; }

  // Live paths toward dst (cached; drops paths reported down).
  [[nodiscard]] std::vector<controlplane::Path> paths(IsdAs dst);
  void paths_async(IsdAs dst,
                   std::function<void(std::vector<controlplane::Path>)> cb);

  // The daemon's TRC database (fed from the local control service's ISD
  // plus any TRCs learned during bootstrap).
  [[nodiscard]] const cppki::Trc* trc(Isd isd) const;

  // SCMP feedback: a path failed on the data plane (e.g. external
  // interface down). It is quarantined for down_path_penalty.
  void report_path_down(const std::string& fingerprint);
  [[nodiscard]] bool path_alive(const controlplane::Path& path) const;

  // Thin reads of the registry-backed counters.
  [[nodiscard]] std::uint64_t lookups() const { return lookups_->value(); }
  [[nodiscard]] std::uint64_t cache_hits() const {
    return cache_hits_->value();
  }
  [[nodiscard]] std::uint64_t cache_misses() const {
    return cache_misses_->value();
  }
  // Currently quarantined fingerprints (expired entries are pruned on
  // every lookup and report, so this cannot grow without bound).
  [[nodiscard]] std::size_t quarantined() const { return down_until_.size(); }
  void flush_cache() { cache_.clear(); }

 private:
  struct CacheEntry {
    std::vector<controlplane::Path> paths;
    SimTime fetched_at = 0;
  };

  [[nodiscard]] std::vector<controlplane::Path> filter_alive(
      std::vector<controlplane::Path> paths) const;
  // Erases quarantine entries whose penalty has elapsed.
  void prune_quarantine();

  controlplane::ScionNetwork& net_;
  IsdAs ia_;
  Config config_;
  controlplane::ControlService* service_;
  std::unordered_map<IsdAs, CacheEntry> cache_;
  std::map<std::string, SimTime> down_until_;
  obs::Counter* lookups_ = nullptr;
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* cache_misses_ = nullptr;
  obs::Gauge* quarantine_size_ = nullptr;
};

}  // namespace sciera::endhost
