// The bootstrapping server (Section 4.1.2): an HTTP server inside the AS
// serving the signed local topology ("/topology") and the TRCs needed to
// authenticate SCION entities. Topology payloads are signed with the AS
// certificate; the initial TRC is delivered for out-of-band/TOFU-style
// anchoring, later TRCs chain.
#pragma once

#include <string>
#include <vector>

#include "cppki/ca.h"
#include "topology/parser.h"

namespace sciera::endhost {

struct SignedTopology {
  IsdAs as;
  std::string topology_text;  // the AS-local view, serialized
  cppki::Certificate as_cert;
  cppki::Certificate ca_cert;
  crypto::Ed25519::Signature signature{};

  [[nodiscard]] Bytes signing_payload() const;
};

class BootstrapServer {
 public:
  struct Config {
    // HTTP service time for one request, before network latency.
    Duration service_time = 2 * kMillisecond;
  };

  // `local_view` is the AS's topology slice (its own entry and links);
  // the signing key is the AS's control-plane key.
  BootstrapServer(IsdAs as, std::string local_view_text,
                  const cppki::AsCredentials& creds,
                  std::vector<cppki::Trc> trcs, Config config);
  BootstrapServer(IsdAs as, std::string local_view_text,
                  const cppki::AsCredentials& creds,
                  std::vector<cppki::Trc> trcs)
      : BootstrapServer(as, std::move(local_view_text), creds,
                        std::move(trcs), Config{}) {}

  // GET /topology
  [[nodiscard]] const SignedTopology& topology() const { return topology_; }
  // GET /trcs
  [[nodiscard]] const std::vector<cppki::Trc>& trcs() const { return trcs_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::size_t requests_served() const { return requests_; }
  void count_request() const { ++requests_; }

  // Re-signs after a topology change or certificate renewal.
  void refresh(std::string local_view_text, const cppki::AsCredentials& creds);

 private:
  SignedTopology topology_;
  std::vector<cppki::Trc> trcs_;
  Config config_;
  mutable std::size_t requests_ = 0;
};

// Extracts the AS-local topology slice served to hosts: the AS itself and
// its attached links (enough for a host to reach border routers).
[[nodiscard]] std::string local_topology_view(const topology::Topology& topo,
                                              IsdAs as);

// Client-side verification of a fetched topology: signature chain up to
// the anchored TRC.
[[nodiscard]] Status verify_signed_topology(const SignedTopology& topo,
                                            const cppki::TrustStore& store,
                                            SimTime now);

}  // namespace sciera::endhost
