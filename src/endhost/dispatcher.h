// The end-host packet entry point, in both historical flavors
// (Section 4.8):
//   * kDispatcher      — the legacy shared demultiplexer: every SCION
//                        packet for the host enters one fixed UDP port and
//                        one single-threaded process forwards it to the
//                        right application over a local socket. Capacity
//                        is shared across ALL applications and RSS cannot
//                        spread the load (one port, one queue).
//   * kDispatcherless  — the modern design: each application opens its own
//                        UDP underlay socket; the kernel demuxes by port
//                        and RSS spreads flows across cores.
//
// HostStack also carries the port table the PAN sockets bind into.
#pragma once

#include <functional>
#include <unordered_map>

#include "controlplane/control_plane.h"
#include "dataplane/packet.h"
#include "obs/metrics.h"

namespace sciera::endhost {

class LightningFilter;

enum class HostMode { kDispatcher, kDispatcherless };

class HostStack {
 public:
  struct Config {
    HostMode mode = HostMode::kDispatcherless;
    // Dispatcher single-core service capacity (packets/second) shared by
    // every application on the host.
    double dispatcher_pps = 250'000;
    std::size_t dispatcher_queue = 512;
    // Per-socket kernel path capacity with RSS (per application).
    double dispatcherless_pps = 1'800'000;
    // Local delivery hop (unix domain socket / loopback).
    Duration local_hop = 30 * kMicrosecond;
  };

  struct Stats {  // registry-backed snapshot
    std::uint64_t delivered = 0;
    std::uint64_t dropped_no_port = 0;
    std::uint64_t dropped_overload = 0;
    std::uint64_t dropped_filtered = 0;
  };

  using Receiver = std::function<void(const dataplane::ScionPacket& packet,
                                      const dataplane::UdpDatagram& datagram,
                                      SimTime arrival)>;

  HostStack(controlplane::ScionNetwork& net, dataplane::Address addr,
            Config config);
  HostStack(controlplane::ScionNetwork& net, dataplane::Address addr)
      : HostStack(net, addr, Config{}) {}
  ~HostStack();
  HostStack(const HostStack&) = delete;
  HostStack& operator=(const HostStack&) = delete;

  [[nodiscard]] const dataplane::Address& address() const { return addr_; }
  [[nodiscard]] HostMode mode() const { return config_.mode; }
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] controlplane::ScionNetwork& network() { return net_; }

  // Binds a UDP port; fails if taken. Port 0 picks an ephemeral port.
  Result<std::uint16_t> bind(std::uint16_t port, Receiver receiver);
  void unbind(std::uint16_t port);

  // Receives SCMP messages addressed to this host (echo replies to app
  // probes, hop-limit-exceeded for traceroute, path-down errors...).
  using ScmpReceiver = std::function<void(const dataplane::ScionPacket& packet,
                                          const dataplane::ScmpMessage& message,
                                          SimTime arrival)>;
  void set_scmp_receiver(ScmpReceiver receiver) {
    scmp_receiver_ = std::move(receiver);
  }

  // Sends a UDP datagram in a SCION packet (applies the host send path).
  Status send(dataplane::ScionPacket packet);

  // In-path LightningFilter (Section 4.7.1 deployed at the end-host
  // ingress): when set, every arriving UDP payload is checked BEFORE it
  // can occupy the dispatcher queue or reach a port — hostile floods are
  // shed ahead of the shared capacity they would otherwise exhaust. SCMP
  // is control traffic and passes unfiltered. The filter must outlive
  // this stack; nullptr uninstalls.
  void set_ingress_filter(LightningFilter* filter) { filter_ = filter; }
  [[nodiscard]] LightningFilter* ingress_filter() const { return filter_; }

 private:
  void on_local_delivery(const dataplane::ScionPacket& packet,
                         SimTime arrival);
  // Models the dispatcher's shared single queue; returns the added delay
  // or nullopt when the queue overflows.
  [[nodiscard]] std::optional<Duration> dispatcher_delay(SimTime now);

  controlplane::ScionNetwork& net_;
  dataplane::Address addr_;
  Config config_;
  std::unordered_map<std::uint16_t, Receiver> ports_;
  ScmpReceiver scmp_receiver_;
  LightningFilter* filter_ = nullptr;
  std::uint16_t next_ephemeral_ = 32768;
  SimTime dispatcher_free_at_ = 0;
  obs::Counter* delivered_ = nullptr;
  obs::Counter* dropped_no_port_ = nullptr;
  obs::Counter* dropped_overload_ = nullptr;
  obs::Counter* dropped_filtered_ = nullptr;
};

}  // namespace sciera::endhost
