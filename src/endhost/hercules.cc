#include "endhost/hercules.h"

#include <algorithm>
#include <map>

namespace sciera::endhost {

double Hercules::host_limit_bps() const {
  const double bits_per_packet =
      static_cast<double>(config_.payload_bytes + 100) * 8.0;  // + headers
  double pps = 0;
  if (config_.use_xdp) {
    // XDP bypasses the dispatcher and scales over cores via RSS... but
    // only because it uses per-queue sockets; the single dispatcher port
    // would pin everything to one queue.
    pps = config_.xdp_pps_per_core * config_.cores;
  } else if (config_.receiver_mode == HostMode::kDispatcher) {
    // All SCION traffic enters one UDP port served by one process:
    // "its processing capacity was shared across all SCION applications"
    // and RSS cannot spread one port across cores (Section 4.8).
    pps = config_.dispatcher_pps;
  } else {
    // Dispatcherless: per-application sockets, kernel fast path + RSS.
    pps = config_.xdp_pps_per_core * 0.45 * config_.cores;
  }
  return std::min(pps * bits_per_packet, config_.nic_bps);
}

TransferReport Hercules::plan(const std::vector<controlplane::Path>& paths,
                              std::uint64_t file_bytes) const {
  TransferReport report;
  report.host_limit_bps = host_limit_bps();
  if (paths.empty()) return report;

  // Progressive filling: raise all unfrozen path rates together; when a
  // link saturates, freeze every path crossing it.
  std::map<topology::LinkId, double> link_capacity;
  for (const auto& path : paths) {
    for (topology::LinkId id : path.links) {
      link_capacity.emplace(id, topo_.find_link(id)->bandwidth_bps);
    }
  }
  std::vector<double> rate(paths.size(), 0.0);
  std::vector<bool> frozen(paths.size(), false);
  for (;;) {
    std::size_t active = 0;
    for (bool f : frozen) {
      if (!f) ++active;
    }
    if (active == 0) break;
    // Headroom per link divided by the number of active paths on it.
    double step = 1e18;
    for (const auto& [link, capacity] : link_capacity) {
      double used = 0;
      std::size_t users = 0;
      for (std::size_t i = 0; i < paths.size(); ++i) {
        const bool on_link =
            std::find(paths[i].links.begin(), paths[i].links.end(), link) !=
            paths[i].links.end();
        if (!on_link) continue;
        used += rate[i];
        if (!frozen[i]) ++users;
      }
      if (users == 0) continue;
      step = std::min(step, (capacity - used) / static_cast<double>(users));
    }
    if (step <= 1.0) break;  // numerically saturated
    for (std::size_t i = 0; i < paths.size(); ++i) {
      if (!frozen[i]) rate[i] += step;
    }
    // Freeze paths on saturated links.
    for (const auto& [link, capacity] : link_capacity) {
      double used = 0;
      for (std::size_t i = 0; i < paths.size(); ++i) {
        if (std::find(paths[i].links.begin(), paths[i].links.end(), link) !=
            paths[i].links.end()) {
          used += rate[i];
        }
      }
      if (used >= capacity - 1.0) {
        for (std::size_t i = 0; i < paths.size(); ++i) {
          if (std::find(paths[i].links.begin(), paths[i].links.end(), link) !=
              paths[i].links.end()) {
            frozen[i] = true;
          }
        }
      }
    }
  }

  double network_total = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    report.allocations.push_back(PathAllocation{i, rate[i]});
    network_total += rate[i];
  }
  report.network_limit_bps = network_total;
  report.aggregate_bps = std::min(network_total, report.host_limit_bps);
  if (report.aggregate_bps > 0) {
    report.transfer_time = static_cast<Duration>(
        static_cast<double>(file_bytes) * 8.0 / report.aggregate_bps *
        static_cast<double>(kSecond));
  }
  return report;
}

}  // namespace sciera::endhost
