// ChaosEngine: compiles a FaultPlan into simulator events against a live
// ScionNetwork. Every fault application and reversion happens at a
// scheduled simulation time, draws randomness only from the engine's
// seeded Rng (at arm time), and is recorded as a kChaosInject flight
// event plus a sciera_chaos_injected_total{kind=...} counter — so an
// armed scenario replays bit-identically under
// simnet::audit_determinism() and the injected history is auditable
// after the fact.
#pragma once

#include <array>
#include <functional>

#include "chaos/fault_plan.h"
#include "common/thread_annotations.h"
#include "controlplane/control_plane.h"

namespace sciera::chaos {

class ChaosEngine {
 public:
  ChaosEngine(controlplane::ScionNetwork& net, std::uint64_t seed);

  // Bridge to an attack-traffic generator (workload::AttackMatrix — the
  // chaos layer cannot depend on workload directly). `validate` runs at
  // arm time against each adversarial event; `launch` fires at the
  // event's scheduled time. Arming a plan that contains adversarial
  // events without hooks installed fails validation.
  struct AttackHooks {
    std::function<Status(const FaultEvent&)> validate;
    std::function<Status(const FaultEvent&)> launch;
  };
  void set_attack_hooks(AttackHooks hooks) { attack_hooks_ = std::move(hooks); }

  // Validates every event's target against the network, then schedules
  // the whole plan (scripted events plus the randomized campaign, whose
  // draws are all taken now) on net.sim(). Fails without scheduling
  // anything if any target does not resolve. May be called more than
  // once to layer plans.
  [[nodiscard]] Status arm(const FaultPlan& plan);

  // Fault applications so far (reversions not counted).
  [[nodiscard]] std::uint64_t faults_injected() const {
    sim_thread_role.assert_held();
    return injected_;
  }

 private:
  void schedule(const FaultEvent& event) SCIERA_REQUIRES(sim_thread_role);
  // Entry points of scheduled simulator events: they assert the role
  // themselves (the Simulator::Action capture site cannot carry the
  // annotation).
  void apply(const FaultEvent& event);
  void revert(const FaultEvent& event);
  // Links incident to an ISD-AS (by string) or to a PoP city.
  [[nodiscard]] std::vector<std::string> region_link_labels(
      const std::string& target) const;
  // Control services named by an event target ("*" = every AS, in
  // topology order). Instantiates lazily, like ScionNetwork does.
  [[nodiscard]] std::vector<controlplane::ControlService*> services_for(
      const std::string& target);
  [[nodiscard]] Status validate(const FaultEvent& event);
  void note(const FaultEvent& event, const char* action);

  controlplane::ScionNetwork& net_;
  // Campaign randomness and injection bookkeeping belong to the thread
  // driving this network's simulator.
  Rng rng_ SCIERA_GUARDED_BY(sim_thread_role);
  std::uint64_t injected_ SCIERA_GUARDED_BY(sim_thread_role) = 0;
  std::array<obs::Counter*, 12> injected_by_kind_{};
  AttackHooks attack_hooks_{};
};

}  // namespace sciera::chaos
