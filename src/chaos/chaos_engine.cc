#include "chaos/chaos_engine.h"

#include "obs/flight_recorder.h"
#include "simnet/link.h"

namespace sciera::chaos {

namespace {
constexpr std::array<FaultKind, 12> kAllKinds = {
    FaultKind::kLinkDown,       FaultKind::kLinkUp,
    FaultKind::kLinkFlap,       FaultKind::kRegionOutage,
    FaultKind::kControlOutage,  FaultKind::kControlSlowdown,
    FaultKind::kRouterCrash,    FaultKind::kLossStorm,
    FaultKind::kJitterStorm,    FaultKind::kForgedFlood,
    FaultKind::kSpoofedFlood,   FaultKind::kFlashCrowd,
};

// Control-fault targets address replicas with an optional '#' suffix:
// "<as>" / "*"  -> primary replica only (the legacy single-service
//                  semantics — plans written before replication behave
//                  identically, and replicas 1..N-1 stay up to absorb
//                  failover traffic);
// "<as>#rK"     -> replica K of that AS;
// "<as>#*"      -> every replica of the set.
void split_replica_target(const std::string& target, std::string& base,
                          std::string& suffix) {
  const auto pos = target.find('#');
  if (pos == std::string::npos) {
    base = target;
    suffix.clear();
    return;
  }
  base = target.substr(0, pos);
  suffix = target.substr(pos + 1);
}

// Parses "rK" into K. Returns false on anything else.
bool parse_replica_index(const std::string& suffix, std::size_t& index) {
  if (suffix.size() < 2 || suffix[0] != 'r') return false;
  std::size_t value = 0;
  for (std::size_t i = 1; i < suffix.size(); ++i) {
    const char c = suffix[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  index = value;
  return true;
}
}  // namespace

ChaosEngine::ChaosEngine(controlplane::ScionNetwork& net, std::uint64_t seed)
    : net_(net), rng_(seed, "chaos-engine") {
  auto& registry = obs::MetricsRegistry::global();
  for (std::size_t i = 0; i < kAllKinds.size(); ++i) {
    injected_by_kind_[i] = &registry.counter(
        "sciera_chaos_injected_total",
        obs::Labels{{"kind", fault_kind_name(kAllKinds[i])}});
  }
}

std::vector<std::string> ChaosEngine::region_link_labels(
    const std::string& target) const {
  const auto ia = IsdAs::parse(target);
  std::vector<std::string> labels;
  for (const topology::LinkInfo& link : net_.topology().links()) {
    const bool match =
        ia ? (link.a == *ia || link.b == *ia)
           : (net_.topology().find_as(link.a)->city == target ||
              net_.topology().find_as(link.b)->city == target);
    if (match) labels.push_back(link.label);
  }
  return labels;
}

std::vector<controlplane::ControlService*> ChaosEngine::services_for(
    const std::string& target) {
  std::string base;
  std::string suffix;
  split_replica_target(target, base, suffix);

  std::vector<controlplane::ControlServiceSet*> sets;
  if (base == "*") {
    for (const topology::AsInfo& as : net_.topology().ases()) {
      sets.push_back(net_.control_service_set(as.ia));
    }
  } else {
    const auto ia = IsdAs::parse(base);
    if (ia && net_.topology().find_as(*ia) != nullptr) {
      sets.push_back(net_.control_service_set(*ia));
    }
  }

  std::vector<controlplane::ControlService*> services;
  for (auto* set : sets) {
    if (suffix.empty()) {
      services.push_back(set->primary());
    } else if (suffix == "*") {
      for (std::size_t k = 0; k < set->size(); ++k) {
        services.push_back(set->replica(k));
      }
    } else if (std::size_t k = 0; parse_replica_index(suffix, k)) {
      // Out-of-range indices were rejected at validate(); a replica that
      // nevertheless is not there just matches nothing.
      if (auto* replica = set->replica(k)) services.push_back(replica);
    }
  }
  return services;
}

Status ChaosEngine::validate(const FaultEvent& event) {
  const auto bad = [&](const char* what) {
    return Error{Errc::kNotFound,
                 std::string(fault_kind_name(event.kind)) + ": " + what +
                     " '" + event.target + "' not found"};
  };
  switch (event.kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
    case FaultKind::kLinkFlap:
    case FaultKind::kLossStorm:
    case FaultKind::kJitterStorm:
      if (net_.topology().find_link_by_label(event.target) == nullptr) {
        return bad("link");
      }
      return {};
    case FaultKind::kRegionOutage:
      if (region_link_labels(event.target).empty()) return bad("region");
      return {};
    case FaultKind::kControlOutage:
    case FaultKind::kControlSlowdown: {
      std::string base;
      std::string suffix;
      split_replica_target(event.target, base, suffix);
      if (base != "*") {
        const auto ia = IsdAs::parse(base);
        if (!ia || net_.topology().find_as(*ia) == nullptr) {
          return bad("control service AS");
        }
      }
      if (!suffix.empty() && suffix != "*") {
        std::size_t index = 0;
        const std::size_t replicas =
            net_.options().control_replicas < 1
                ? 1
                : net_.options().control_replicas;
        if (!parse_replica_index(suffix, index) || index >= replicas) {
          return bad("control service replica");
        }
      }
      return {};
    }
    case FaultKind::kRouterCrash: {
      const auto ia = IsdAs::parse(event.target);
      if (!ia || net_.topology().find_as(*ia) == nullptr) return bad("router");
      return {};
    }
    case FaultKind::kForgedFlood:
    case FaultKind::kSpoofedFlood:
    case FaultKind::kFlashCrowd:
      if (!attack_hooks_.validate || !attack_hooks_.launch) {
        return Error{Errc::kInvalidArgument,
                     std::string(fault_kind_name(event.kind)) +
                         ": attack event requires an armed attack generator "
                         "(set_attack_hooks)"};
      }
      return attack_hooks_.validate(event);
  }
  return Error{Errc::kInvalidArgument, "unknown fault kind"};
}

Status ChaosEngine::arm(const FaultPlan& plan) {
  sim_thread_role.assert_held();
  for (const FaultEvent& event : plan.events) {
    if (auto status = validate(event); !status.ok()) return status;
  }
  for (const FaultEvent& event : plan.events) schedule(event);
  // Randomized campaign: every draw happens here, at arm time, so the
  // schedule is fixed by (plan, seed) alone.
  const auto& links = net_.topology().links();
  for (std::size_t i = 0; i < plan.random.flaps; ++i) {
    FaultEvent flap;
    flap.kind = FaultKind::kLinkFlap;
    flap.target = links[rng_.next_below(links.size())].label;
    flap.at = plan.random.start +
              static_cast<Duration>(rng_.uniform(
                  0.0, static_cast<double>(plan.random.window)));
    flap.hold = static_cast<Duration>(
        rng_.uniform(static_cast<double>(plan.random.min_hold),
                     static_cast<double>(plan.random.max_hold)));
    schedule(flap);
  }
  return {};
}

void ChaosEngine::schedule(const FaultEvent& event) {
  // Fault injection mutates cross-shard state (links span shards, control
  // outages touch whole service sets), so every chaos event executes in
  // the global domain — exclusively, with all shards at the barrier.
  net_.sim().schedule(simnet::Domain::global(), event.at,
                      [this, event] { apply(event); });
}

void ChaosEngine::note(const FaultEvent& event, const char* action) {
  obs::FlightRecorder::global().record(
      obs::TraceType::kChaosInject, net_.sim().now(),
      net_.sim().executed_events(), "chaos",
      std::string(action) + " " + fault_kind_name(event.kind) + " " +
          event.target);
}

void ChaosEngine::apply(const FaultEvent& event) {
  sim_thread_role.assert_held();
  ++injected_;
  for (std::size_t i = 0; i < kAllKinds.size(); ++i) {
    if (kAllKinds[i] == event.kind) injected_by_kind_[i]->inc();
  }
  note(event, "apply");
  const bool reverts = event.hold > 0;
  switch (event.kind) {
    case FaultKind::kLinkUp:
      net_.set_link_up(event.target, true);
      return;
    case FaultKind::kLinkDown:
    case FaultKind::kLinkFlap:
      net_.set_link_up(event.target, false);
      break;
    case FaultKind::kRegionOutage:
      for (const std::string& label : region_link_labels(event.target)) {
        net_.set_link_up(label, false);
      }
      break;
    case FaultKind::kControlOutage:
      for (auto* service : services_for(event.target)) {
        service->set_available(false);
      }
      break;
    case FaultKind::kControlSlowdown:
      for (auto* service : services_for(event.target)) {
        service->set_slowdown(event.magnitude);
      }
      break;
    case FaultKind::kRouterCrash: {
      if (auto* router = net_.router(*IsdAs::parse(event.target))) {
        router->crash();
      }
      break;
    }
    case FaultKind::kLossStorm: {
      auto* link = net_.link(event.target);
      const double before = link->config().loss_probability;
      link->set_loss_probability(event.magnitude);
      if (reverts) {
        net_.sim().schedule_after(simnet::Domain::global(), event.hold,
                                  [this, event, link, before] {
                                    note(event, "revert");
                                    link->set_loss_probability(before);
                                  });
      }
      return;
    }
    case FaultKind::kJitterStorm: {
      auto* link = net_.link(event.target);
      const double before = link->config().jitter_sigma;
      link->set_jitter_sigma(event.magnitude);
      if (reverts) {
        net_.sim().schedule_after(simnet::Domain::global(), event.hold,
                                  [this, event, link, before] {
                                    note(event, "revert");
                                    link->set_jitter_sigma(before);
                                  });
      }
      return;
    }
    case FaultKind::kForgedFlood:
    case FaultKind::kSpoofedFlood:
    case FaultKind::kFlashCrowd:
      // The generator schedules the whole burst now and ends it on its
      // own (`hold` is the burst duration) — nothing to revert. Launch
      // failures can only be mid-run conditions (e.g. the origin router
      // crashed); they are noted, not fatal.
      if (!attack_hooks_.launch(event).ok()) note(event, "launch-failed");
      return;
  }
  if (reverts) {
    net_.sim().schedule_after(simnet::Domain::global(), event.hold,
                              [this, event] { revert(event); });
  }
}

void ChaosEngine::revert(const FaultEvent& event) {
  sim_thread_role.assert_held();
  note(event, "revert");
  switch (event.kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kLinkFlap:
      net_.set_link_up(event.target, true);
      return;
    case FaultKind::kRegionOutage:
      for (const std::string& label : region_link_labels(event.target)) {
        net_.set_link_up(label, true);
      }
      return;
    case FaultKind::kControlOutage:
      for (auto* service : services_for(event.target)) {
        service->set_available(true);
      }
      return;
    case FaultKind::kControlSlowdown:
      for (auto* service : services_for(event.target)) {
        service->set_slowdown(1.0);
      }
      return;
    case FaultKind::kRouterCrash:
      if (auto* router = net_.router(*IsdAs::parse(event.target))) {
        router->restart();
      }
      return;
    case FaultKind::kLinkUp:
    case FaultKind::kLossStorm:
    case FaultKind::kJitterStorm:
    case FaultKind::kForgedFlood:
    case FaultKind::kSpoofedFlood:
    case FaultKind::kFlashCrowd:
      return;  // reverted inline (storms) or nothing to revert
  }
}

}  // namespace sciera::chaos
