// Soak harness: runs the full SCIERA topology under a fault plan with a
// deterministic many-flow workload and distills the run into a
// SurvivabilityReport — delivery ratio, delivery-gap (failover latency)
// distribution, the daemons' lookup error budget, and the executed
// ScheduleDigest. The report's JSON is derived exclusively from
// simulation state, so two same-seed runs serialize byte-identically
// (the chaos.soak_smoke ctest gate compares across processes).
#pragma once

#include "chaos/chaos_engine.h"
#include "workload/attack.h"
#include "workload/workload.h"

namespace sciera::chaos {

// Workload tuned for soak runs: short daemon TTL and quarantine penalty
// so faults bite mid-run, flows spread across the whole run window.
[[nodiscard]] workload::WorkloadConfig soak_default_workload();

struct SoakOptions {
  std::uint64_t seed = 0x5C1E2A;
  Duration duration = 12 * kSecond;
  // Resilience A/B switch; overrides workload.daemon.resilience.enabled.
  bool resilience = true;
  // Self-healing A/B switch: enables the control plane's healing loop
  // (timer-driven re-beaconing, segment expiry, link-state triggered
  // sweeps) and 3 path-service replicas per AS. Off preserves the PR 4
  // stack: one service, stale paths forever, no reconvergence.
  bool self_healing = false;
  // Scheduler backend for the network simulator (calendar queue by
  // default; the jump_to_far replay test A/Bs against the binary heap).
  simnet::SchedulerConfig scheduler{};
  // Border-router fast path A/B: batched (default) vs scalar frame
  // processing. Reports must be byte-identical either way — the chaos
  // suite gates on it.
  bool batched_router = true;
  // Defenses A/B switch for attack plans: in-path LightningFilters on
  // every host, router admission priority classes, and per-offender SCMP
  // suppression. Only consulted when the plan carries adversarial events
  // (plan_has_attack) — legacy plans never stand up attack machinery, so
  // their schedules stay byte-identical to previous releases.
  bool defenses = true;
  workload::WorkloadConfig workload = soak_default_workload();
};

struct SurvivabilityReport {  // registry-backed snapshot
  std::string plan;
  std::uint64_t seed = 0;
  bool resilience = true;
  Duration duration = 0;
  // Delivery.
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t send_failures = 0;
  std::uint64_t failover_sends = 0;
  // delivered / (sent + send_failures): failed sends count against it.
  double delivery_ratio = 0.0;
  // Gaps between consecutive deliveries network-wide — the failover
  // latency signal: a long gap is time the fleet delivered nothing.
  Duration gap_p50 = 0;
  Duration gap_p90 = 0;
  Duration gap_p99 = 0;
  Duration gap_max = 0;
  // Lookup error budget, aggregated over every host daemon.
  std::uint64_t lookups = 0;
  std::uint64_t lookup_timeouts = 0;
  std::uint64_t lookup_retries = 0;
  std::uint64_t stale_served = 0;
  std::uint64_t degraded_empty = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t control_lookups_dropped = 0;
  // Self-healing section: reconvergence and stale-window evidence. All
  // durations/timestamps are -1 when the event never happened (e.g.
  // healing disabled, or no link-state change during the run).
  bool self_healing = false;
  std::uint64_t healing_sweeps = 0;
  std::uint64_t segments_expired = 0;
  std::uint64_t segments_revoked = 0;
  // Last and worst measured link-change -> sweep-complete latency.
  Duration time_to_reconverge = -1;
  Duration max_reconverge = -1;
  // Fleet-wide stale-serving window: earliest first and latest last
  // stale answer across all daemons.
  SimTime stale_first = -1;
  SimTime stale_last = -1;

  // Attack section — all zeros/sentinels when the plan carries no
  // adversarial events, so the schema is stable across plan families.
  bool attack_plan = false;
  bool defenses = false;
  std::uint64_t attack_sent = 0;
  std::uint64_t attack_delivered = 0;  // hostile packets reaching a socket
  std::uint64_t surge_sent = 0;
  std::uint64_t surge_delivered = 0;
  std::uint64_t attack_send_failures = 0;
  // Legitimate-traffic delivery ratio (== delivery_ratio; hostile traffic
  // never counts toward delivery) — the defenses-on > defenses-off gate.
  double legit_delivery_ratio = 0.0;
  // In-path filter verdicts aggregated over every installed filter.
  std::uint64_t filter_accepted = 0;
  std::uint64_t filter_dropped_rule = 0;
  std::uint64_t filter_dropped_auth = 0;
  std::uint64_t filter_dropped_rate = 0;
  std::uint64_t filter_dropped_overflow = 0;
  // Host-stack drops: in-path filter shed vs dispatcher-queue overload.
  std::uint64_t host_dropped_filtered = 0;
  std::uint64_t host_dropped_overload = 0;
  // Router overload control, aggregated fleet-wide.
  std::uint64_t admission_dropped_data = 0;
  std::uint64_t admission_dropped_control = 0;
  std::uint64_t scmp_suppressed = 0;
  // Reconvergence achieved while the flood raged (-1 = never / healing
  // off / not an attack plan).
  Duration reconverge_under_flood = -1;

  // Chaos + determinism evidence.
  std::uint64_t faults_injected = 0;
  std::uint64_t executed_events = 0;
  std::uint64_t schedule_hash = 0;

  // Deterministic single-line-per-field JSON (schema
  // "sciera.chaos.soak.v1").
  [[nodiscard]] std::string to_json() const;
};

// Structural self-check of a serialized report: schema tag plus every
// required section present. The CLI runs it on its own output and exits
// nonzero on failure, so a report regression cannot ship silently.
[[nodiscard]] bool validate_report_json(const std::string& json);

// Builds the SCIERA network, launches the workload, arms the plan, runs
// for options.duration, and summarizes.
[[nodiscard]] Result<SurvivabilityReport> run_soak(const FaultPlan& plan,
                                                   const SoakOptions& options);

}  // namespace sciera::chaos
