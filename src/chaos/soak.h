// Soak harness: runs the full SCIERA topology under a fault plan with a
// deterministic many-flow workload and distills the run into a
// SurvivabilityReport — delivery ratio, delivery-gap (failover latency)
// distribution, the daemons' lookup error budget, and the executed
// ScheduleDigest. The report's JSON is derived exclusively from
// simulation state, so two same-seed runs serialize byte-identically
// (the chaos.soak_smoke ctest gate compares across processes).
#pragma once

#include "chaos/chaos_engine.h"
#include "workload/workload.h"

namespace sciera::chaos {

// Workload tuned for soak runs: short daemon TTL and quarantine penalty
// so faults bite mid-run, flows spread across the whole run window.
[[nodiscard]] workload::WorkloadConfig soak_default_workload();

struct SoakOptions {
  std::uint64_t seed = 0x5C1E2A;
  Duration duration = 12 * kSecond;
  // Resilience A/B switch; overrides workload.daemon.resilience.enabled.
  bool resilience = true;
  workload::WorkloadConfig workload = soak_default_workload();
};

struct SurvivabilityReport {  // registry-backed snapshot
  std::string plan;
  std::uint64_t seed = 0;
  bool resilience = true;
  Duration duration = 0;
  // Delivery.
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t send_failures = 0;
  std::uint64_t failover_sends = 0;
  // delivered / (sent + send_failures): failed sends count against it.
  double delivery_ratio = 0.0;
  // Gaps between consecutive deliveries network-wide — the failover
  // latency signal: a long gap is time the fleet delivered nothing.
  Duration gap_p50 = 0;
  Duration gap_p90 = 0;
  Duration gap_p99 = 0;
  Duration gap_max = 0;
  // Lookup error budget, aggregated over every host daemon.
  std::uint64_t lookups = 0;
  std::uint64_t lookup_timeouts = 0;
  std::uint64_t lookup_retries = 0;
  std::uint64_t stale_served = 0;
  std::uint64_t degraded_empty = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t control_lookups_dropped = 0;
  // Chaos + determinism evidence.
  std::uint64_t faults_injected = 0;
  std::uint64_t executed_events = 0;
  std::uint64_t schedule_hash = 0;

  // Deterministic single-line-per-field JSON (schema
  // "sciera.chaos.soak.v1").
  [[nodiscard]] std::string to_json() const;
};

// Builds the SCIERA network, launches the workload, arms the plan, runs
// for options.duration, and summarizes.
[[nodiscard]] Result<SurvivabilityReport> run_soak(const FaultPlan& plan,
                                                   const SoakOptions& options);

}  // namespace sciera::chaos
