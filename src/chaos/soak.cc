#include "chaos/soak.h"

#include <algorithm>
#include <cstdio>

#include "topology/sciera_net.h"

namespace sciera::chaos {

namespace {

std::string fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::string duration_ms(Duration d) {
  return fixed(static_cast<double>(d) / static_cast<double>(kMillisecond), 3);
}

Duration percentile(const std::vector<Duration>& sorted, int pct) {
  if (sorted.empty()) return 0;
  const std::size_t index = (sorted.size() - 1) * static_cast<std::size_t>(pct) / 100;
  return sorted[index];
}

// -1 is the "never happened" sentinel for reconvergence/stale times; it
// serializes as a bare -1 rather than a nonsense negative millisecond.
std::string duration_ms_or_none(Duration d) {
  return d < 0 ? std::string("-1") : duration_ms(d);
}

}  // namespace

workload::WorkloadConfig soak_default_workload() {
  workload::WorkloadConfig config;
  config.hosts = 12;
  config.flows = 40;
  config.packets_per_flow = 120;
  config.mean_interval = 60 * kMillisecond;
  config.start_window = 1 * kSecond;
  // Short TTL and penalty so an outage of a few seconds actually forces
  // the daemons through the degradation ladder mid-run.
  config.daemon.path_cache_ttl = 2 * kSecond;
  config.daemon.down_path_penalty = 3 * kSecond;
  return config;
}

Result<SurvivabilityReport> run_soak(const FaultPlan& plan,
                                     const SoakOptions& options) {
  controlplane::ScionNetwork::Options net_options;
  net_options.seed = options.seed;
  net_options.scheduler = options.scheduler;
  net_options.router.batched = options.batched_router;
  if (options.self_healing) {
    // Healing cadence tuned to the soak timescale: refresh every second,
    // segments live 2.5 sweeps, detection lag 200ms — a multi-second
    // ring cut is revoked within ~a sweep and restored links reappear
    // before the run ends.
    net_options.control_replicas = 3;
    net_options.healing.enabled = true;
    net_options.healing.refresh_interval = 1 * kSecond;
    net_options.healing.segment_lifetime = 2'500 * kMillisecond;
    net_options.healing.detection_delay = 200 * kMillisecond;
  }
  controlplane::ScionNetwork net(topology::build_sciera(), net_options);

  workload::WorkloadConfig workload_config = options.workload;
  workload_config.seed = options.seed;
  workload_config.daemon.resilience.enabled = options.resilience;
  auto built = workload::TrafficMatrix::Builder{}
                   .net(net)
                   .config(workload_config)
                   .build();
  if (!built) return built.error();
  workload::TrafficMatrix& workload = **built;

  // Per-destination delivery buffers: under the sharded core the delivery
  // callback fires on the destination host's shard thread, so each host
  // gets its own pre-sized slot (no two shards share a vector). The
  // buffers are merged and sorted below — the legacy single-thread stream
  // was already time-ordered, so the sorted multiset (and therefore every
  // gap statistic) is byte-identical to the pre-shard harness.
  std::vector<std::vector<SimTime>> deliveries_by_host(workload_config.hosts);
  workload.set_on_delivery(
      [&deliveries_by_host](const dataplane::Address&, std::size_t host,
                            SimTime at) {
        deliveries_by_host[host].push_back(at);
      });
  if (auto status = workload.launch(); !status.ok()) return status.error();

  ChaosEngine engine(net, options.seed);
  if (auto status = engine.arm(plan); !status.ok()) return status.error();

  net.sim().run_for(options.duration);

  SurvivabilityReport report;
  report.plan = plan.name;
  report.seed = options.seed;
  report.resilience = options.resilience;
  report.duration = options.duration;
  const workload::WorkloadReport wr = workload.report();
  report.packets_sent = wr.packets_sent;
  report.packets_delivered = wr.packets_delivered;
  report.send_failures = wr.send_failures;
  report.failover_sends = wr.failover_sends;
  const std::uint64_t attempts = wr.packets_sent + wr.send_failures;
  report.delivery_ratio =
      attempts == 0 ? 0.0
                    : static_cast<double>(wr.packets_delivered) /
                          static_cast<double>(attempts);

  // Delivery-gap distribution: merge the per-host streams and sort by
  // time; consecutive differences are the network-wide delivery gaps.
  std::vector<SimTime> delivery_times;
  std::size_t total_deliveries = 0;
  for (const auto& host_times : deliveries_by_host) {
    total_deliveries += host_times.size();
  }
  delivery_times.reserve(total_deliveries);
  for (const auto& host_times : deliveries_by_host) {
    delivery_times.insert(delivery_times.end(), host_times.begin(),
                          host_times.end());
  }
  std::sort(delivery_times.begin(), delivery_times.end());
  std::vector<Duration> gaps;
  gaps.reserve(delivery_times.empty() ? 0 : delivery_times.size() - 1);
  for (std::size_t i = 1; i < delivery_times.size(); ++i) {
    gaps.push_back(delivery_times[i] - delivery_times[i - 1]);
  }
  std::sort(gaps.begin(), gaps.end());
  report.gap_p50 = percentile(gaps, 50);
  report.gap_p90 = percentile(gaps, 90);
  report.gap_p99 = percentile(gaps, 99);
  report.gap_max = gaps.empty() ? 0 : gaps.back();

  for (std::size_t i = 0; i < workload.host_count(); ++i) {
    const endhost::Daemon& daemon = workload.daemon(i);
    report.lookups += daemon.lookups();
    report.lookup_timeouts += daemon.lookup_timeouts();
    report.lookup_retries += daemon.lookup_retries();
    report.stale_served += daemon.stale_served();
    report.degraded_empty += daemon.degraded_empty();
    report.breaker_trips += daemon.breaker_trips();
  }
  for (const topology::AsInfo& as : net.topology().ases()) {
    report.control_lookups_dropped +=
        net.control_service_set(as.ia)->lookups_dropped();
  }

  report.self_healing = options.self_healing;
  const controlplane::HealingSnapshot healing = net.healing_snapshot();
  report.healing_sweeps = healing.sweeps;
  report.segments_expired = healing.segments_expired;
  report.segments_revoked = healing.segments_revoked;
  report.time_to_reconverge = healing.last_reconverge;
  report.max_reconverge = healing.max_reconverge;
  for (std::size_t i = 0; i < workload.host_count(); ++i) {
    const endhost::Daemon& daemon = workload.daemon(i);
    if (daemon.first_stale_at() >= 0 &&
        (report.stale_first < 0 || daemon.first_stale_at() < report.stale_first)) {
      report.stale_first = daemon.first_stale_at();
    }
    if (daemon.last_stale_at() > report.stale_last) {
      report.stale_last = daemon.last_stale_at();
    }
  }

  report.faults_injected = engine.faults_injected();
  report.executed_events = net.sim().executed_events();
  report.schedule_hash = net.sim().schedule_hash();
  return report;
}

std::string SurvivabilityReport::to_json() const {
  char hash_hex[32];
  std::snprintf(hash_hex, sizeof hash_hex, "0x%016llx",
                static_cast<unsigned long long>(schedule_hash));
  std::string json;
  json += "{\n";
  json += "  \"schema\": \"sciera.chaos.soak.v1\",\n";
  json += "  \"plan\": \"" + plan + "\",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n";
  json += std::string("  \"resilience\": ") +
          (resilience ? "true" : "false") + ",\n";
  json += "  \"duration_ms\": " + duration_ms(duration) + ",\n";
  json += "  \"delivery\": {\n";
  json += "    \"sent\": " + std::to_string(packets_sent) + ",\n";
  json += "    \"delivered\": " + std::to_string(packets_delivered) + ",\n";
  json += "    \"send_failures\": " + std::to_string(send_failures) + ",\n";
  json += "    \"failover_sends\": " + std::to_string(failover_sends) + ",\n";
  json += "    \"ratio\": " + fixed(delivery_ratio, 6) + "\n";
  json += "  },\n";
  json += "  \"delivery_gaps_ms\": {\n";
  json += "    \"p50\": " + duration_ms(gap_p50) + ",\n";
  json += "    \"p90\": " + duration_ms(gap_p90) + ",\n";
  json += "    \"p99\": " + duration_ms(gap_p99) + ",\n";
  json += "    \"max\": " + duration_ms(gap_max) + "\n";
  json += "  },\n";
  json += "  \"lookup_error_budget\": {\n";
  json += "    \"lookups\": " + std::to_string(lookups) + ",\n";
  json += "    \"timeouts\": " + std::to_string(lookup_timeouts) + ",\n";
  json += "    \"retries\": " + std::to_string(lookup_retries) + ",\n";
  json += "    \"stale_served\": " + std::to_string(stale_served) + ",\n";
  json += "    \"degraded_empty\": " + std::to_string(degraded_empty) + ",\n";
  json += "    \"breaker_trips\": " + std::to_string(breaker_trips) + ",\n";
  json += "    \"control_dropped\": " +
          std::to_string(control_lookups_dropped) + "\n";
  json += "  },\n";
  json += "  \"self_healing\": {\n";
  json += std::string("    \"enabled\": ") +
          (self_healing ? "true" : "false") + ",\n";
  json += "    \"sweeps\": " + std::to_string(healing_sweeps) + ",\n";
  json += "    \"segments_expired\": " + std::to_string(segments_expired) +
          ",\n";
  json += "    \"segments_revoked\": " + std::to_string(segments_revoked) +
          ",\n";
  json += "    \"time_to_reconverge_ms\": " +
          duration_ms_or_none(time_to_reconverge) + ",\n";
  json += "    \"max_reconverge_ms\": " + duration_ms_or_none(max_reconverge) +
          ",\n";
  json += "    \"stale_window_ms\": {\n";
  json += "      \"first\": " + duration_ms_or_none(stale_first) + ",\n";
  json += "      \"last\": " + duration_ms_or_none(stale_last) + ",\n";
  json += "      \"width\": " +
          duration_ms_or_none(
              stale_first < 0 ? -1 : stale_last - stale_first) + "\n";
  json += "    }\n";
  json += "  },\n";
  json += "  \"faults_injected\": " + std::to_string(faults_injected) + ",\n";
  json += "  \"determinism\": {\n";
  json += "    \"executed_events\": " + std::to_string(executed_events) +
          ",\n";
  json += std::string("    \"schedule_hash\": \"") + hash_hex + "\"\n";
  json += "  }\n";
  json += "}\n";
  return json;
}

bool validate_report_json(const std::string& json) {
  // Structural check, not a JSON parser: the serializer above is the only
  // producer, so key presence is a faithful schema probe.
  static constexpr const char* kRequired[] = {
      "\"schema\": \"sciera.chaos.soak.v1\"",
      "\"plan\":",
      "\"seed\":",
      "\"resilience\":",
      "\"duration_ms\":",
      "\"delivery\":",
      "\"delivered\":",
      "\"ratio\":",
      "\"delivery_gaps_ms\":",
      "\"lookup_error_budget\":",
      "\"self_healing\":",
      "\"time_to_reconverge_ms\":",
      "\"stale_window_ms\":",
      "\"faults_injected\":",
      "\"determinism\":",
      "\"schedule_hash\":",
  };
  for (const char* key : kRequired) {
    if (json.find(key) == std::string::npos) return false;
  }
  return true;
}

}  // namespace sciera::chaos
