#include "chaos/soak.h"

#include <algorithm>
#include <cstdio>

#include "topology/sciera_net.h"

namespace sciera::chaos {

namespace {

std::string fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::string duration_ms(Duration d) {
  return fixed(static_cast<double>(d) / static_cast<double>(kMillisecond), 3);
}

Duration percentile(const std::vector<Duration>& sorted, int pct) {
  if (sorted.empty()) return 0;
  const std::size_t index = (sorted.size() - 1) * static_cast<std::size_t>(pct) / 100;
  return sorted[index];
}

// -1 is the "never happened" sentinel for reconvergence/stale times; it
// serializes as a bare -1 rather than a nonsense negative millisecond.
std::string duration_ms_or_none(Duration d) {
  return d < 0 ? std::string("-1") : duration_ms(d);
}

// Deployment filter secret, derived from the soak seed alone so two
// processes (and every worker-thread count) seal and verify with the
// same keys — a prerequisite for byte-identical attack reports.
Bytes soak_filter_secret(std::uint64_t seed) {
  Bytes secret;
  secret.reserve(16);
  for (int i = 0; i < 16; ++i) {
    secret.push_back(static_cast<std::uint8_t>(
        (seed >> (8 * (i % 8))) ^ static_cast<std::uint64_t>(0x5C + i)));
  }
  return secret;
}

// FaultEvent -> AttackBurst translation: target is the origin ISD-AS,
// magnitude the rate in packets/second, hold the burst duration.
Result<workload::AttackBurst> to_attack_burst(const FaultEvent& event) {
  workload::AttackBurst burst;
  switch (event.kind) {
    case FaultKind::kForgedFlood:
      burst.kind = workload::AttackKind::kForgedFlood;
      break;
    case FaultKind::kSpoofedFlood:
      burst.kind = workload::AttackKind::kSpoofedFlood;
      break;
    case FaultKind::kFlashCrowd:
      burst.kind = workload::AttackKind::kFlashCrowd;
      break;
    default:
      return Error{Errc::kInvalidArgument,
                   std::string(fault_kind_name(event.kind)) +
                       " is not an attack event"};
  }
  const auto ia = IsdAs::parse(event.target);
  if (!ia) {
    return Error{Errc::kInvalidArgument, "attack origin '" + event.target +
                                             "' is not an ISD-AS string"};
  }
  burst.source = *ia;
  burst.pps = event.magnitude;
  burst.duration = event.hold;
  return burst;
}

}  // namespace

workload::WorkloadConfig soak_default_workload() {
  workload::WorkloadConfig config;
  config.hosts = 12;
  config.flows = 40;
  config.packets_per_flow = 120;
  config.mean_interval = 60 * kMillisecond;
  config.start_window = 1 * kSecond;
  // Short TTL and penalty so an outage of a few seconds actually forces
  // the daemons through the degradation ladder mid-run.
  config.daemon.path_cache_ttl = 2 * kSecond;
  config.daemon.down_path_penalty = 3 * kSecond;
  return config;
}

Result<SurvivabilityReport> run_soak(const FaultPlan& plan,
                                     const SoakOptions& options) {
  const bool attack_plan = plan_has_attack(plan);
  const bool defenses = attack_plan && options.defenses;
  const Bytes filter_secret = soak_filter_secret(options.seed);

  controlplane::ScionNetwork::Options net_options;
  net_options.seed = options.seed;
  net_options.scheduler = options.scheduler;
  net_options.router.batched = options.batched_router;
  if (defenses) {
    // Router overload control: a bounded data-class budget that engages
    // when the floods overlap, an unlimited (prioritized) control class,
    // and a per-offender SCMP error budget against amplification.
    net_options.router.admission.data_pps = 6000;
    net_options.router.admission.data_burst = 512;
    net_options.router.scmp_rate_pps = 200;
    net_options.router.scmp_burst = 8;
  }
  if (options.self_healing) {
    // Healing cadence tuned to the soak timescale: refresh every second,
    // segments live 2.5 sweeps, detection lag 200ms — a multi-second
    // ring cut is revoked within ~a sweep and restored links reappear
    // before the run ends.
    net_options.control_replicas = 3;
    net_options.healing.enabled = true;
    net_options.healing.refresh_interval = 1 * kSecond;
    net_options.healing.segment_lifetime = 2'500 * kMillisecond;
    net_options.healing.detection_delay = 200 * kMillisecond;
  }
  controlplane::ScionNetwork net(topology::build_sciera(), net_options);

  workload::WorkloadConfig workload_config = options.workload;
  workload_config.seed = options.seed;
  workload_config.daemon.resilience.enabled = options.resilience;
  if (attack_plan) {
    // Attack soaks run hosts on the legacy shared dispatcher (Section
    // 4.8): one finite queue per host that floods and legitimate traffic
    // contend for — the axis the in-path filter defends. Both arms of the
    // defense A/B seal payloads, so the offered traffic is identical and
    // only the defenses differ.
    workload_config.stack.mode = endhost::HostMode::kDispatcher;
    workload_config.stack.dispatcher_pps = 600;
    workload_config.stack.dispatcher_queue = 24;
    workload_config.seal_payloads = true;
    workload_config.filter_secret = filter_secret;
    workload_config.install_filters = defenses;
    workload_config.filter.require_auth = true;
    workload_config.filter.rate_pps = 500;
    workload_config.filter.burst = 64;
    // Small per-source table so the spoofed-source flood actually hits
    // the overflow path instead of growing state without bound.
    workload_config.filter.max_sources = 64;
    workload_config.filter.idle_timeout = 2 * kSecond;
  }
  auto built = workload::TrafficMatrix::Builder{}
                   .net(net)
                   .config(workload_config)
                   .build();
  if (!built) return built.error();
  workload::TrafficMatrix& workload = **built;

  // Per-destination delivery buffers: under the sharded core the delivery
  // callback fires on the destination host's shard thread, so each host
  // gets its own pre-sized slot (no two shards share a vector). The
  // buffers are merged and sorted below — the legacy single-thread stream
  // was already time-ordered, so the sorted multiset (and therefore every
  // gap statistic) is byte-identical to the pre-shard harness.
  std::vector<std::vector<SimTime>> deliveries_by_host(workload_config.hosts);
  workload.set_on_delivery(
      [&deliveries_by_host](const dataplane::Address&, std::size_t host,
                            SimTime at) {
        deliveries_by_host[host].push_back(at);
      });
  std::unique_ptr<workload::AttackMatrix> attack;
  if (attack_plan) {
    workload::AttackConfig attack_config;
    attack_config.seed = options.seed;
    attack_config.payload_bytes = workload_config.payload_bytes;
    attack_config.filter_secret = filter_secret;
    attack = std::make_unique<workload::AttackMatrix>(net, workload,
                                                      attack_config);
    workload.set_on_foreign_delivery(
        [&attack = *attack](std::uint8_t marker, std::size_t, SimTime) {
          attack.note_delivery(marker);
        });
  }
  if (auto status = workload.launch(); !status.ok()) return status.error();

  ChaosEngine engine(net, options.seed);
  if (attack) {
    engine.set_attack_hooks(
        {[&attack = *attack](const FaultEvent& event) -> Status {
           auto burst = to_attack_burst(event);
           if (!burst) return burst.error();
           return attack.validate(*burst);
         },
         [&attack = *attack](const FaultEvent& event) -> Status {
           auto burst = to_attack_burst(event);
           if (!burst) return burst.error();
           return attack.launch(*burst);
         }});
  }
  if (auto status = engine.arm(plan); !status.ok()) return status.error();

  net.sim().run_for(options.duration);

  SurvivabilityReport report;
  report.plan = plan.name;
  report.seed = options.seed;
  report.resilience = options.resilience;
  report.duration = options.duration;
  const workload::WorkloadReport wr = workload.report();
  report.packets_sent = wr.packets_sent;
  report.packets_delivered = wr.packets_delivered;
  report.send_failures = wr.send_failures;
  report.failover_sends = wr.failover_sends;
  const std::uint64_t attempts = wr.packets_sent + wr.send_failures;
  report.delivery_ratio =
      attempts == 0 ? 0.0
                    : static_cast<double>(wr.packets_delivered) /
                          static_cast<double>(attempts);

  // Delivery-gap distribution: merge the per-host streams and sort by
  // time; consecutive differences are the network-wide delivery gaps.
  std::vector<SimTime> delivery_times;
  std::size_t total_deliveries = 0;
  for (const auto& host_times : deliveries_by_host) {
    total_deliveries += host_times.size();
  }
  delivery_times.reserve(total_deliveries);
  for (const auto& host_times : deliveries_by_host) {
    delivery_times.insert(delivery_times.end(), host_times.begin(),
                          host_times.end());
  }
  std::sort(delivery_times.begin(), delivery_times.end());
  std::vector<Duration> gaps;
  gaps.reserve(delivery_times.empty() ? 0 : delivery_times.size() - 1);
  for (std::size_t i = 1; i < delivery_times.size(); ++i) {
    gaps.push_back(delivery_times[i] - delivery_times[i - 1]);
  }
  std::sort(gaps.begin(), gaps.end());
  report.gap_p50 = percentile(gaps, 50);
  report.gap_p90 = percentile(gaps, 90);
  report.gap_p99 = percentile(gaps, 99);
  report.gap_max = gaps.empty() ? 0 : gaps.back();

  for (std::size_t i = 0; i < workload.host_count(); ++i) {
    const endhost::Daemon& daemon = workload.daemon(i);
    report.lookups += daemon.lookups();
    report.lookup_timeouts += daemon.lookup_timeouts();
    report.lookup_retries += daemon.lookup_retries();
    report.stale_served += daemon.stale_served();
    report.degraded_empty += daemon.degraded_empty();
    report.breaker_trips += daemon.breaker_trips();
  }
  for (const topology::AsInfo& as : net.topology().ases()) {
    report.control_lookups_dropped +=
        net.control_service_set(as.ia)->lookups_dropped();
  }

  report.self_healing = options.self_healing;
  const controlplane::HealingSnapshot healing = net.healing_snapshot();
  report.healing_sweeps = healing.sweeps;
  report.segments_expired = healing.segments_expired;
  report.segments_revoked = healing.segments_revoked;
  report.time_to_reconverge = healing.last_reconverge;
  report.max_reconverge = healing.max_reconverge;
  for (std::size_t i = 0; i < workload.host_count(); ++i) {
    const endhost::Daemon& daemon = workload.daemon(i);
    if (daemon.first_stale_at() >= 0 &&
        (report.stale_first < 0 || daemon.first_stale_at() < report.stale_first)) {
      report.stale_first = daemon.first_stale_at();
    }
    if (daemon.last_stale_at() > report.stale_last) {
      report.stale_last = daemon.last_stale_at();
    }
  }

  report.attack_plan = attack_plan;
  report.defenses = defenses;
  report.legit_delivery_ratio = report.delivery_ratio;
  if (attack) {
    const workload::AttackReport ar = attack->report();
    report.attack_sent = ar.attack_sent;
    report.attack_delivered = ar.attack_delivered;
    report.surge_sent = ar.surge_sent;
    report.surge_delivered = ar.surge_delivered;
    report.attack_send_failures = ar.send_failures;
    const auto filter_stats = workload.filter_stats();
    report.filter_accepted = filter_stats.accepted;
    report.filter_dropped_rule = filter_stats.dropped_rule;
    report.filter_dropped_auth = filter_stats.dropped_auth;
    report.filter_dropped_rate = filter_stats.dropped_rate;
    report.filter_dropped_overflow = filter_stats.dropped_overflow;
    const auto stack_stats = workload.stack_stats();
    report.host_dropped_filtered = stack_stats.dropped_filtered;
    report.host_dropped_overload = stack_stats.dropped_overload;
    for (const topology::AsInfo& as : net.topology().ases()) {
      const auto router_stats = net.router(as.ia)->stats();
      report.admission_dropped_data += router_stats.admission_dropped_data;
      report.admission_dropped_control +=
          router_stats.admission_dropped_control;
      report.scmp_suppressed += router_stats.scmp_suppressed;
    }
    report.reconverge_under_flood = report.time_to_reconverge;
  }

  report.faults_injected = engine.faults_injected();
  report.executed_events = net.sim().executed_events();
  report.schedule_hash = net.sim().schedule_hash();
  return report;
}

std::string SurvivabilityReport::to_json() const {
  char hash_hex[32];
  std::snprintf(hash_hex, sizeof hash_hex, "0x%016llx",
                static_cast<unsigned long long>(schedule_hash));
  std::string json;
  json += "{\n";
  json += "  \"schema\": \"sciera.chaos.soak.v1\",\n";
  json += "  \"plan\": \"" + plan + "\",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n";
  json += std::string("  \"resilience\": ") +
          (resilience ? "true" : "false") + ",\n";
  json += "  \"duration_ms\": " + duration_ms(duration) + ",\n";
  json += "  \"delivery\": {\n";
  json += "    \"sent\": " + std::to_string(packets_sent) + ",\n";
  json += "    \"delivered\": " + std::to_string(packets_delivered) + ",\n";
  json += "    \"send_failures\": " + std::to_string(send_failures) + ",\n";
  json += "    \"failover_sends\": " + std::to_string(failover_sends) + ",\n";
  json += "    \"ratio\": " + fixed(delivery_ratio, 6) + "\n";
  json += "  },\n";
  json += "  \"delivery_gaps_ms\": {\n";
  json += "    \"p50\": " + duration_ms(gap_p50) + ",\n";
  json += "    \"p90\": " + duration_ms(gap_p90) + ",\n";
  json += "    \"p99\": " + duration_ms(gap_p99) + ",\n";
  json += "    \"max\": " + duration_ms(gap_max) + "\n";
  json += "  },\n";
  json += "  \"lookup_error_budget\": {\n";
  json += "    \"lookups\": " + std::to_string(lookups) + ",\n";
  json += "    \"timeouts\": " + std::to_string(lookup_timeouts) + ",\n";
  json += "    \"retries\": " + std::to_string(lookup_retries) + ",\n";
  json += "    \"stale_served\": " + std::to_string(stale_served) + ",\n";
  json += "    \"degraded_empty\": " + std::to_string(degraded_empty) + ",\n";
  json += "    \"breaker_trips\": " + std::to_string(breaker_trips) + ",\n";
  json += "    \"control_dropped\": " +
          std::to_string(control_lookups_dropped) + "\n";
  json += "  },\n";
  json += "  \"self_healing\": {\n";
  json += std::string("    \"enabled\": ") +
          (self_healing ? "true" : "false") + ",\n";
  json += "    \"sweeps\": " + std::to_string(healing_sweeps) + ",\n";
  json += "    \"segments_expired\": " + std::to_string(segments_expired) +
          ",\n";
  json += "    \"segments_revoked\": " + std::to_string(segments_revoked) +
          ",\n";
  json += "    \"time_to_reconverge_ms\": " +
          duration_ms_or_none(time_to_reconverge) + ",\n";
  json += "    \"max_reconverge_ms\": " + duration_ms_or_none(max_reconverge) +
          ",\n";
  json += "    \"stale_window_ms\": {\n";
  json += "      \"first\": " + duration_ms_or_none(stale_first) + ",\n";
  json += "      \"last\": " + duration_ms_or_none(stale_last) + ",\n";
  json += "      \"width\": " +
          duration_ms_or_none(
              stale_first < 0 ? -1 : stale_last - stale_first) + "\n";
  json += "    }\n";
  json += "  },\n";
  json += "  \"attack\": {\n";
  json += std::string("    \"attack_plan\": ") +
          (attack_plan ? "true" : "false") + ",\n";
  json += std::string("    \"defenses\": ") + (defenses ? "true" : "false") +
          ",\n";
  json += "    \"attack_sent\": " + std::to_string(attack_sent) + ",\n";
  json += "    \"attack_delivered\": " + std::to_string(attack_delivered) +
          ",\n";
  json += "    \"surge_sent\": " + std::to_string(surge_sent) + ",\n";
  json += "    \"surge_delivered\": " + std::to_string(surge_delivered) +
          ",\n";
  json += "    \"attack_send_failures\": " +
          std::to_string(attack_send_failures) + ",\n";
  json += "    \"legit_ratio\": " + fixed(legit_delivery_ratio, 6) + ",\n";
  json += "    \"filter_verdicts\": {\n";
  json += "      \"accepted\": " + std::to_string(filter_accepted) + ",\n";
  json += "      \"rule\": " + std::to_string(filter_dropped_rule) + ",\n";
  json += "      \"auth\": " + std::to_string(filter_dropped_auth) + ",\n";
  json += "      \"rate\": " + std::to_string(filter_dropped_rate) + ",\n";
  json += "      \"overflow\": " + std::to_string(filter_dropped_overflow) +
          "\n";
  json += "    },\n";
  json += "    \"host_drops\": {\n";
  json += "      \"filtered\": " + std::to_string(host_dropped_filtered) +
          ",\n";
  json += "      \"overload\": " + std::to_string(host_dropped_overload) +
          "\n";
  json += "    },\n";
  json += "    \"router_admission_drops\": {\n";
  json += "      \"data\": " + std::to_string(admission_dropped_data) + ",\n";
  json += "      \"control\": " + std::to_string(admission_dropped_control) +
          "\n";
  json += "    },\n";
  json += "    \"scmp_suppressed\": " + std::to_string(scmp_suppressed) +
          ",\n";
  json += "    \"reconverge_under_flood_ms\": " +
          duration_ms_or_none(reconverge_under_flood) + "\n";
  json += "  },\n";
  json += "  \"faults_injected\": " + std::to_string(faults_injected) + ",\n";
  json += "  \"determinism\": {\n";
  json += "    \"executed_events\": " + std::to_string(executed_events) +
          ",\n";
  json += std::string("    \"schedule_hash\": \"") + hash_hex + "\"\n";
  json += "  }\n";
  json += "}\n";
  return json;
}

bool validate_report_json(const std::string& json) {
  // Structural check, not a JSON parser: the serializer above is the only
  // producer, so key presence is a faithful schema probe.
  static constexpr const char* kRequired[] = {
      "\"schema\": \"sciera.chaos.soak.v1\"",
      "\"plan\":",
      "\"seed\":",
      "\"resilience\":",
      "\"duration_ms\":",
      "\"delivery\":",
      "\"delivered\":",
      "\"ratio\":",
      "\"delivery_gaps_ms\":",
      "\"lookup_error_budget\":",
      "\"self_healing\":",
      "\"time_to_reconverge_ms\":",
      "\"stale_window_ms\":",
      "\"attack\":",
      "\"legit_ratio\":",
      "\"filter_verdicts\":",
      "\"host_drops\":",
      "\"router_admission_drops\":",
      "\"scmp_suppressed\":",
      "\"reconverge_under_flood_ms\":",
      "\"faults_injected\":",
      "\"determinism\":",
      "\"schedule_hash\":",
  };
  for (const char* key : kRequired) {
    if (json.find(key) == std::string::npos) return false;
  }
  return true;
}

}  // namespace sciera::chaos
