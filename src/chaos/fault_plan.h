// Fault plans: declarative, replayable incident schedules for the SCIERA
// network. A plan is a list of timestamped fault events (link flaps,
// correlated regional outages, control-service outages and slowdowns,
// router crashes, loss/jitter storms) plus an optional randomized flap
// campaign drawn from a seeded Rng. The ChaosEngine turns a plan into
// simulator events, so two runs with the same plan and seed replay
// byte-for-byte under simnet::audit_determinism().
//
// The named plans model the paper's real incidents: the KREONET
// northern-hemisphere ring cut (Section 4.7.1), transatlantic circuit
// flaps, and control-service maintenance windows.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"

namespace sciera::chaos {

enum class FaultKind : std::uint8_t {
  // Link admin-state faults; target is a topology link label.
  kLinkDown,     // hold > 0 re-ups the link after `hold`
  kLinkUp,
  kLinkFlap,     // down, then up after `hold`
  // Correlated outage: every link incident to the target AS (ISD-AS
  // string) or PoP city goes down together, re-upping after `hold`.
  kRegionOutage,
  // Control-service faults; target is an ISD-AS string or "*" for every
  // instantiated control service.
  kControlOutage,    // lookups dropped for `hold`
  kControlSlowdown,  // answer latency x magnitude for `hold`
  // Border-router crash with state loss; restarts after `hold` (a hold of
  // 0 leaves it down for the rest of the run).
  kRouterCrash,
  // Transient impairment storms on a link; magnitude is the loss
  // probability / jitter sigma, reverted to the link's previous value
  // after `hold`.
  kLossStorm,
  kJitterStorm,
  // Adversarial traffic bursts, executed by an armed attack generator
  // (workload::AttackMatrix via ChaosEngine::set_attack_hooks). Target is
  // the origin ISD-AS string, magnitude the send rate in packets/second,
  // hold the burst duration. No reversion: the burst ends on its own.
  kForgedFlood,   // compromised AS floods with forged authenticators
  kSpoofedFlood,  // flood fabricating a fresh source AS per packet
  kFlashCrowd,    // legitimate surge with valid authenticators
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kLinkFlap;
  std::string target;      // link label, ISD-AS string, city, or "*"
  double magnitude = 0.0;  // loss probability / jitter sigma / slowdown
  Duration hold = 0;       // time until the fault auto-reverts (0 = never)
};

// Randomized flap campaign layered on top of the scripted events: `flaps`
// link flaps at times uniform in [start, start + window), each holding
// down for uniform [min_hold, max_hold), targets drawn uniformly over the
// topology's links. All draws come from the engine's seeded Rng.
struct RandomCampaign {
  std::size_t flaps = 0;
  SimTime start = 0;
  Duration window = 10 * kSecond;
  Duration min_hold = 50 * kMillisecond;
  Duration max_hold = 500 * kMillisecond;
};

struct FaultPlan {
  std::string name;
  std::vector<FaultEvent> events;
  RandomCampaign random{};

  FaultPlan& add(FaultEvent event) {
    events.push_back(std::move(event));
    return *this;
  }
};

// --- Named plans (the soak CLI's menu) -------------------------------------

// Section 4.7.1's headline incident, sharpened: the whole KREONET
// northern-hemisphere ring goes dark for several seconds while the KISTI
// control services are in a maintenance outage, so path failover has to
// ride cached state.
[[nodiscard]] FaultPlan kreonet_ring_cut_plan();
// Repeated flapping of the transatlantic core circuits.
[[nodiscard]] FaultPlan transatlantic_flap_plan();
// Global control-service maintenance: every CS down, then slow.
[[nodiscard]] FaultPlan control_maintenance_plan();
// Loss and jitter storms on the Singapore-Amsterdam channel bundle.
[[nodiscard]] FaultPlan sg_ams_storm_plan();
// Everything at once, plus a randomized flap campaign.
[[nodiscard]] FaultPlan mixed_mayhem_plan();
// The hostile-traffic incident (Sections 4.7.1, 4.9): a forged-MAC flood
// from a compromised AS, a spoofed-source flood fabricating origin ASes,
// a legitimate flash crowd riding on top, and a mid-flood link cut so
// reconvergence has to happen while the network is saturated. Requires an
// armed attack generator (soak defenses wiring / AttackMatrix).
[[nodiscard]] FaultPlan forged_flood_plan();

// True when the plan contains any adversarial traffic event (the soak
// only stands up attack generators and defenses for such plans, keeping
// every legacy plan's schedule byte-identical).
[[nodiscard]] bool plan_has_attack(const FaultPlan& plan);

[[nodiscard]] std::vector<std::string> plan_names();
[[nodiscard]] Result<FaultPlan> plan_by_name(const std::string& name);

}  // namespace sciera::chaos
