#include "chaos/fault_plan.h"

#include "topology/sciera_net.h"

namespace sciera::chaos {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kLinkFlap: return "link_flap";
    case FaultKind::kRegionOutage: return "region_outage";
    case FaultKind::kControlOutage: return "control_outage";
    case FaultKind::kControlSlowdown: return "control_slowdown";
    case FaultKind::kRouterCrash: return "router_crash";
    case FaultKind::kLossStorm: return "loss_storm";
    case FaultKind::kJitterStorm: return "jitter_storm";
    case FaultKind::kForgedFlood: return "forged_flood";
    case FaultKind::kSpoofedFlood: return "spoofed_flood";
    case FaultKind::kFlashCrowd: return "flash_crowd";
  }
  return "unknown";
}

FaultPlan kreonet_ring_cut_plan() {
  namespace a = topology::ases;
  FaultPlan plan;
  plan.name = "kreonet-ring-cut";
  // The KISTI control services go into maintenance first, so the daemons'
  // caches are all they have when the ring is cut.
  plan.add({1 * kSecond, FaultKind::kControlOutage, "*", 0.0, 8 * kSecond});
  const Duration cut = 6 * kSecond;
  plan.add({2 * kSecond, FaultKind::kLinkFlap, "kreonet-ams-chg", 0.0, cut});
  plan.add({2 * kSecond, FaultKind::kLinkFlap, "kreonet-chg-stl", 0.0, cut});
  plan.add({2 * kSecond, FaultKind::kLinkFlap, "kreonet-stl-dj", 0.0, cut});
  plan.add({2 * kSecond, FaultKind::kLinkFlap, "kreonet-dj-hk", 0.0, cut});
  plan.add({2 * kSecond, FaultKind::kLinkFlap, "kreonet-hk-sg", 0.0, cut});
  plan.add({2 * kSecond, FaultKind::kLinkFlap, "kreonet-sg-ams", 0.0, cut});
  // The Daejeon router restarts mid-incident with state loss.
  plan.add({3 * kSecond, FaultKind::kRouterCrash, a::kisti_dj().to_string(),
            0.0, 2 * kSecond});
  return plan;
}

FaultPlan transatlantic_flap_plan() {
  FaultPlan plan;
  plan.name = "transatlantic-flap";
  for (int i = 0; i < 4; ++i) {
    const SimTime base = (1 + 2 * i) * kSecond;
    plan.add({base, FaultKind::kLinkFlap, "geant-bridges", 0.0,
              400 * kMillisecond});
    plan.add({base + 500 * kMillisecond, FaultKind::kLinkFlap,
              "geant-bridges-2", 0.0, 400 * kMillisecond});
  }
  plan.add({5 * kSecond, FaultKind::kLinkFlap, "kisti-ams-bridges", 0.0,
            2 * kSecond});
  return plan;
}

FaultPlan control_maintenance_plan() {
  namespace a = topology::ases;
  FaultPlan plan;
  plan.name = "control-maintenance";
  plan.add({1 * kSecond, FaultKind::kControlOutage, "*", 0.0, 5 * kSecond});
  // After the outage the services come back degraded (answers 8x slower).
  plan.add({6 * kSecond, FaultKind::kControlSlowdown, "*", 8.0, 4 * kSecond});
  plan.add({3 * kSecond, FaultKind::kRouterCrash, a::geant().to_string(), 0.0,
            1 * kSecond});
  return plan;
}

FaultPlan sg_ams_storm_plan() {
  FaultPlan plan;
  plan.name = "sg-ams-storm";
  const Duration hold = 4 * kSecond;
  plan.add({1 * kSecond, FaultKind::kLossStorm, "kreonet-sg-ams", 0.05, hold});
  plan.add({1 * kSecond, FaultKind::kLossStorm, "cae1-sg-ams", 0.10, hold});
  plan.add({1 * kSecond, FaultKind::kJitterStorm, "kaust1-sg-ams", 0.4, hold});
  plan.add({2 * kSecond, FaultKind::kLinkFlap, "kaust2-sg-ams", 0.0,
            2 * kSecond});
  return plan;
}

FaultPlan mixed_mayhem_plan() {
  namespace a = topology::ases;
  FaultPlan plan;
  plan.name = "mixed-mayhem";
  plan.add({1 * kSecond, FaultKind::kRegionOutage, "Singapore", 0.0,
            3 * kSecond});
  plan.add({2 * kSecond, FaultKind::kControlOutage,
            a::kisti_ams().to_string(), 0.0, 4 * kSecond});
  plan.add({2500 * kMillisecond, FaultKind::kControlSlowdown,
            a::geant().to_string(), 5.0, 3 * kSecond});
  plan.add({3 * kSecond, FaultKind::kRouterCrash, a::bridges().to_string(),
            0.0, 1500 * kMillisecond});
  plan.add({4 * kSecond, FaultKind::kLossStorm, "geant-kisti-sg", 0.08,
            3 * kSecond});
  plan.random.flaps = 12;
  plan.random.start = 1 * kSecond;
  plan.random.window = 8 * kSecond;
  return plan;
}

FaultPlan forged_flood_plan() {
  namespace a = topology::ases;
  FaultPlan plan;
  plan.name = "forged-flood";
  // The compromised GEANT AS opens with a sustained forged-MAC flood
  // against the workload's hosts (magnitude = packets/second).
  plan.add({1 * kSecond, FaultKind::kForgedFlood, a::geant().to_string(),
            5000.0, 6 * kSecond});
  // A spoofed-source flood joins from BRIDGES, fabricating a fresh origin
  // AS per packet — the filter-table exhaustion vector. While both floods
  // overlap the routers' data-class admission is over budget too.
  plan.add({2 * kSecond, FaultKind::kSpoofedFlood, a::bridges().to_string(),
            4000.0, 4 * kSecond});
  // A legitimate flash crowd from KISTI Amsterdam rides on top: valid
  // authenticators, so defenses must pass it while shedding the floods.
  plan.add({3 * kSecond, FaultKind::kFlashCrowd, a::kisti_ams().to_string(),
            1500.0, 3 * kSecond});
  // Mid-flood link cut: reconvergence has to complete while the floods
  // still rage — the report's reconverge-under-flood gate.
  plan.add({4 * kSecond, FaultKind::kLinkFlap, "kreonet-sg-ams", 0.0,
            2 * kSecond});
  return plan;
}

bool plan_has_attack(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events) {
    switch (event.kind) {
      case FaultKind::kForgedFlood:
      case FaultKind::kSpoofedFlood:
      case FaultKind::kFlashCrowd:
        return true;
      default:
        break;
    }
  }
  return false;
}

std::vector<std::string> plan_names() {
  return {"kreonet-ring-cut", "transatlantic-flap", "control-maintenance",
          "sg-ams-storm", "mixed-mayhem", "forged-flood"};
}

Result<FaultPlan> plan_by_name(const std::string& name) {
  if (name == "kreonet-ring-cut") return kreonet_ring_cut_plan();
  if (name == "transatlantic-flap") return transatlantic_flap_plan();
  if (name == "control-maintenance") return control_maintenance_plan();
  if (name == "sg-ams-storm") return sg_ams_storm_plan();
  if (name == "mixed-mayhem") return mixed_mayhem_plan();
  if (name == "forged-flood") return forged_flood_plan();
  return Error{Errc::kNotFound, "unknown fault plan: " + name};
}

}  // namespace sciera::chaos
