#include "workload/workload.h"

namespace sciera::workload {

namespace {
constexpr std::uint16_t kWorkloadPort = 40000;
}  // namespace

TrafficMatrix::TrafficMatrix(controlplane::ScionNetwork& net,
                             WorkloadConfig config)
    : net_(net), config_(config), rng_(config.seed, "workload") {}

TrafficMatrix::~TrafficMatrix() = default;

Status TrafficMatrix::launch() {
  const auto& ases = net_.topology().ases();
  if (ases.empty()) {
    return Error{Errc::kInvalidArgument, "workload needs a topology with ASes"};
  }
  if (config_.hosts < 2) {
    return Error{Errc::kInvalidArgument, "workload needs at least two hosts"};
  }
  payload_.assign(config_.payload_bytes, 0xA5);

  hosts_.reserve(config_.hosts);
  for (std::size_t i = 0; i < config_.hosts; ++i) {
    Host host;
    host.address = {ases[i % ases.size()].ia,
                    static_cast<std::uint32_t>(0x0B000000 + i)};
    host.daemon = std::make_unique<endhost::Daemon>(net_, host.address.ia,
                                                    config_.daemon);
    auto ctx = endhost::PanContext::Builder{}
                   .net(net_)
                   .address(host.address)
                   .daemon(*host.daemon)
                   .build(rng_.fork("host-" + std::to_string(i)));
    if (!ctx) return ctx.error();
    host.ctx = std::move(ctx).value();
    auto socket = endhost::PanSocket::open(
        *host.ctx, kWorkloadPort,
        [this, i](const dataplane::Address& from, std::uint16_t,
                  const Bytes&, SimTime at) {
          ++report_.packets_delivered;
          if (on_delivery_) on_delivery_(from, i, at);
        });
    if (!socket) return socket.error();
    host.socket = std::move(socket).value();
    hosts_.push_back(std::move(host));
  }

  flows_.reserve(config_.flows);
  for (std::size_t i = 0; i < config_.flows; ++i) {
    Flow flow;
    flow.src = rng_.next_below(hosts_.size());
    flow.dst = rng_.next_below(hosts_.size() - 1);
    if (flow.dst >= flow.src) ++flow.dst;  // never self-talk
    flows_.push_back(flow);
  }
  for (const Flow& flow : flows_) schedule_flow(flow);
  return {};
}

void TrafficMatrix::schedule_flow(const Flow& flow) {
  auto& sim = net_.sim();
  endhost::PanSocket* socket = hosts_[flow.src].socket.get();
  const dataplane::Address to = hosts_[flow.dst].address;
  SimTime t = sim.now() +
              static_cast<Duration>(rng_.uniform(
                  0.0, static_cast<double>(config_.start_window)));
  for (std::size_t k = 0; k < config_.packets_per_flow; ++k) {
    t += 1 + static_cast<Duration>(rng_.exponential(
                 static_cast<double>(config_.mean_interval)));
    sim.at(t, [this, socket, to] {
      auto receipt = socket->send_to(to, kWorkloadPort, payload_);
      if (!receipt.ok()) {
        ++report_.send_failures;
        return;
      }
      ++report_.packets_sent;
      if (receipt->failover) ++report_.failover_sends;
    });
  }
}

}  // namespace sciera::workload
