#include "workload/workload.h"

#include <algorithm>
#include <string>

namespace sciera::workload {

namespace {
// Placement list for host attachment: the configured restriction when
// present, otherwise every AS of the topology in its canonical order.
std::vector<IsdAs> placement_ases(const controlplane::ScionNetwork& net,
                                  const WorkloadConfig& config) {
  if (!config.ases.empty()) return config.ases;
  std::vector<IsdAs> all;
  all.reserve(net.topology().ases().size());
  for (const auto& as_info : net.topology().ases()) all.push_back(as_info.ia);
  return all;
}
}  // namespace

Result<std::unique_ptr<TrafficMatrix>> TrafficMatrix::Builder::build() const {
  if (net_ == nullptr) {
    return Error{Errc::kInvalidArgument,
                 "TrafficMatrix::Builder requires net()"};
  }
  if (net_->topology().ases().empty()) {
    return Error{Errc::kInvalidArgument,
                 "workload needs a topology with ASes"};
  }
  if (config_.hosts < 2) {
    return Error{Errc::kInvalidArgument,
                 "workload needs at least two hosts, got " +
                     std::to_string(config_.hosts)};
  }
  if (config_.flows == 0) {
    return Error{Errc::kInvalidArgument,
                 "workload needs at least one flow (zero-flow matrix)"};
  }
  if (config_.packets_per_flow == 0) {
    return Error{Errc::kInvalidArgument,
                 "workload needs at least one packet per flow"};
  }
  if (config_.mean_interval <= 0) {
    return Error{Errc::kInvalidArgument,
                 "workload mean_interval must be positive, got " +
                     std::to_string(config_.mean_interval)};
  }
  if (config_.start_window < 0) {
    return Error{Errc::kInvalidArgument,
                 "workload start_window must be non-negative, got " +
                     std::to_string(config_.start_window)};
  }
  for (const IsdAs ia : config_.ases) {
    if (net_->topology().find_as(ia) == nullptr) {
      return Error{Errc::kNotFound,
                   "workload placement names unknown AS " + ia.to_string()};
    }
  }
  if ((config_.seal_payloads || config_.install_filters) &&
      config_.filter_secret.empty()) {
    return Error{Errc::kInvalidArgument,
                 "workload sealing/filtering requires a filter_secret"};
  }
  return std::make_unique<TrafficMatrix>(*net_, config_);
}

TrafficMatrix::TrafficMatrix(controlplane::ScionNetwork& net,
                             WorkloadConfig config)
    : net_(net), config_(std::move(config)), rng_(config_.seed, "workload") {}

TrafficMatrix::~TrafficMatrix() = default;

Status TrafficMatrix::launch() {
  const std::vector<IsdAs> ases = placement_ases(net_, config_);
  if (ases.empty()) {
    return Error{Errc::kInvalidArgument, "workload needs a topology with ASes"};
  }
  for (const IsdAs ia : ases) {
    if (net_.topology().find_as(ia) == nullptr) {
      return Error{Errc::kNotFound,
                   "workload placement names unknown AS " + ia.to_string()};
    }
  }
  if (config_.hosts < 2) {
    return Error{Errc::kInvalidArgument, "workload needs at least two hosts"};
  }
  if ((config_.seal_payloads || config_.install_filters) &&
      config_.filter_secret.empty()) {
    return Error{Errc::kInvalidArgument,
                 "workload sealing/filtering requires a filter_secret"};
  }
  payload_.assign(config_.payload_bytes, kLegitMarker);

  hosts_.reserve(config_.hosts);
  for (std::size_t i = 0; i < config_.hosts; ++i) {
    Host host;
    host.address = {ases[i % ases.size()],
                    static_cast<std::uint32_t>(0x0B000000 + i)};
    host.daemon = std::make_unique<endhost::Daemon>(net_, host.address.ia,
                                                    config_.daemon);
    if (config_.install_filters) {
      host.filter = std::make_unique<endhost::LightningFilter>(
          config_.filter_secret, config_.filter);
    }
    auto ctx = endhost::PanContext::Builder{}
                   .net(net_)
                   .address(host.address)
                   .daemon(*host.daemon)
                   .stack_config(config_.stack)
                   .build(rng_.fork("host-" + std::to_string(i)));
    if (!ctx) return ctx.error();
    host.ctx = std::move(ctx).value();
    if (host.filter) host.ctx->stack().set_ingress_filter(host.filter.get());
    host.send_payload = payload_;
    if (config_.seal_payloads) {
      // One key schedule per host, at launch; every send reuses the tag.
      const endhost::LightningSealer sealer(config_.filter_secret,
                                            host.address.ia);
      const Bytes tag = sealer.seal(payload_);
      host.send_payload.insert(host.send_payload.end(), tag.begin(),
                               tag.end());
    }
    auto socket = endhost::PanSocket::open(
        *host.ctx, kWorkloadPort,
        [this, i](const dataplane::Address& from, std::uint16_t,
                  const Bytes& data, SimTime at) {
          // Classify by marker byte: attack/surge traffic that reached the
          // socket is routed to the foreign observer and never counts as
          // legitimate delivery. Legacy payloads are entirely
          // marker-filled, so pre-attack schedules are unchanged.
          const std::uint8_t marker = data.empty() ? kLegitMarker
                                                   : data.front();
          if (marker != kLegitMarker) {
            if (on_foreign_delivery_) on_foreign_delivery_(marker, i, at);
            return;
          }
          delivered_.fetch_add(1, std::memory_order_relaxed);
          if (on_delivery_) on_delivery_(from, i, at);
        });
    if (!socket) return socket.error();
    host.socket = std::move(socket).value();
    hosts_.push_back(std::move(host));
  }

  flows_.reserve(config_.flows);
  for (std::size_t i = 0; i < config_.flows; ++i) {
    Flow flow;
    flow.src = rng_.next_below(hosts_.size());
    flow.dst = rng_.next_below(hosts_.size() - 1);
    if (flow.dst >= flow.src) ++flow.dst;  // never self-talk
    flows_.push_back(flow);
  }
  for (const Flow& flow : flows_) schedule_flow(flow);
  return {};
}

void TrafficMatrix::schedule_flow(const Flow& flow) {
  auto& sim = net_.sim();
  endhost::PanSocket* socket = hosts_[flow.src].socket.get();
  // hosts_ never reallocates after launch(), so the payload pointer is
  // stable for the lifetime of the scheduled sends.
  const Bytes* payload = &hosts_[flow.src].send_payload;
  // Send events belong to the source host's shard: the whole send path
  // (daemon lookup, PAN context, first-hop router inject) lives in the
  // source AS's domain.
  const simnet::Domain domain = net_.domain_of(hosts_[flow.src].address.ia);
  const dataplane::Address to = hosts_[flow.dst].address;
  SimTime t = sim.now() +
              static_cast<Duration>(rng_.uniform(
                  0.0, static_cast<double>(config_.start_window)));
  for (std::size_t k = 0; k < config_.packets_per_flow; ++k) {
    t += 1 + static_cast<Duration>(rng_.exponential(
                 static_cast<double>(config_.mean_interval)));
    sim.schedule(domain, t, [this, socket, to, payload] {
      auto receipt = socket->send_to(to, kWorkloadPort, *payload);
      if (!receipt.ok()) {
        send_failures_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      sent_.fetch_add(1, std::memory_order_relaxed);
      if (receipt->failover) failovers_.fetch_add(1, std::memory_order_relaxed);
    });
  }
}

endhost::LightningFilter::Stats TrafficMatrix::filter_stats() const {
  endhost::LightningFilter::Stats total;
  for (const Host& host : hosts_) {
    if (!host.filter) continue;
    const auto stats = host.filter->stats();
    total.accepted += stats.accepted;
    total.dropped_rule += stats.dropped_rule;
    total.dropped_auth += stats.dropped_auth;
    total.dropped_rate += stats.dropped_rate;
    total.dropped_overflow += stats.dropped_overflow;
  }
  return total;
}

endhost::HostStack::Stats TrafficMatrix::stack_stats() const {
  endhost::HostStack::Stats total;
  for (const Host& host : hosts_) {
    if (!host.ctx) continue;
    const auto stats = host.ctx->stack().stats();
    total.delivered += stats.delivered;
    total.dropped_no_port += stats.dropped_no_port;
    total.dropped_overload += stats.dropped_overload;
    total.dropped_filtered += stats.dropped_filtered;
  }
  return total;
}

}  // namespace sciera::workload
