// Synthetic many-flow workload generator: attaches a fleet of PAN hosts
// across the topology and schedules a randomized traffic matrix on the
// network's simulator. This is the macro load the sciera_bench harness
// drives through both scheduler backends — it has to be deterministic for
// a given seed so the heap-vs-calendar digest comparison is meaningful,
// which is why every random draw comes from one forked Rng stream and no
// container iteration order leaks into the schedule.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "controlplane/control_plane.h"
#include "endhost/pan.h"

namespace sciera::workload {

struct WorkloadConfig {
  std::uint64_t seed = 0x10AD;
  // Hosts are spread round-robin over the topology's ASes.
  std::size_t hosts = 16;
  // Flows pick (src, dst) host pairs; dst is always a different host.
  std::size_t flows = 64;
  std::size_t packets_per_flow = 20;
  std::size_t payload_bytes = 256;
  // Exponential inter-packet spacing within a flow.
  Duration mean_interval = 5 * kMillisecond;
  // Flow starts are spread uniformly over this window.
  Duration start_window = 50 * kMillisecond;
  // Daemon configuration shared by every host (the chaos soak harness
  // A/Bs resilience on/off through this).
  endhost::Daemon::Config daemon{};
};

struct WorkloadReport {  // registry-backed snapshot
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t send_failures = 0;
  std::uint64_t failover_sends = 0;  // receipts flagged failover
};

// Builds the host fleet and schedules the whole traffic matrix up front;
// the caller then drives net.sim() (run_for/run_all) and reads report().
class TrafficMatrix {
 public:
  TrafficMatrix(controlplane::ScionNetwork& net, WorkloadConfig config);
  ~TrafficMatrix();
  TrafficMatrix(const TrafficMatrix&) = delete;
  TrafficMatrix& operator=(const TrafficMatrix&) = delete;

  // Attaches hosts (PAN contexts + sockets) and schedules every flow's
  // sends on the network's simulator.
  [[nodiscard]] Status launch();

  [[nodiscard]] const WorkloadReport& report() const { return report_; }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] const endhost::Daemon& daemon(std::size_t host) const {
    return *hosts_[host].daemon;
  }

  // Observer invoked on every delivered packet (after the report counter
  // updates): source address, destination host index, delivery time. The
  // soak harness uses it to time failover gaps per destination.
  void set_on_delivery(
      std::function<void(const dataplane::Address&, std::size_t, SimTime)>
          on_delivery) {
    on_delivery_ = std::move(on_delivery);
  }

 private:
  struct Host {
    dataplane::Address address;
    std::unique_ptr<endhost::Daemon> daemon;
    std::unique_ptr<endhost::PanContext> ctx;
    std::unique_ptr<endhost::PanSocket> socket;
  };
  struct Flow {
    std::size_t src = 0;
    std::size_t dst = 0;
  };

  void schedule_flow(const Flow& flow);

  controlplane::ScionNetwork& net_;
  WorkloadConfig config_;
  Rng rng_;
  std::vector<Host> hosts_;
  std::vector<Flow> flows_;
  Bytes payload_;
  WorkloadReport report_;
  std::function<void(const dataplane::Address&, std::size_t, SimTime)>
      on_delivery_;
};

}  // namespace sciera::workload
