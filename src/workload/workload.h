// Synthetic many-flow workload generator: attaches a fleet of PAN hosts
// across the topology and schedules a randomized traffic matrix on the
// network's simulator. This is the macro load the sciera_bench harness
// drives through both scheduler backends — it has to be deterministic for
// a given seed so the heap-vs-calendar digest comparison is meaningful,
// which is why every random draw comes from one forked Rng stream and no
// container iteration order leaks into the schedule.
//
// Under the sharded parallel core each flow's send events are scheduled
// into the source host's shard, deliveries fire on the destination's
// shard, and the report counters are relaxed atomics — the totals are
// pure sums, so they are identical for any thread count.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "controlplane/control_plane.h"
#include "endhost/lightning_filter.h"
#include "endhost/pan.h"

namespace sciera::workload {

// First payload byte of every legitimate workload packet. The delivery
// callback uses it to tell legitimate traffic from attack/surge traffic
// (see attack.h for the hostile markers) — legacy payloads are entirely
// marker-filled, so classification never changes a pre-attack schedule.
inline constexpr std::uint8_t kLegitMarker = 0xA5;

// The UDP port every workload host serves on (and attack floods target).
inline constexpr std::uint16_t kWorkloadPort = 40000;

struct WorkloadConfig {
  std::uint64_t seed = 0x10AD;
  // Hosts are spread round-robin over the placement ASes (below).
  std::size_t hosts = 16;
  // Flows pick (src, dst) host pairs; dst is always a different host.
  std::size_t flows = 64;
  std::size_t packets_per_flow = 20;
  std::size_t payload_bytes = 256;
  // Exponential inter-packet spacing within a flow. Must be positive.
  Duration mean_interval = 5 * kMillisecond;
  // Flow starts are spread uniformly over this window.
  Duration start_window = 50 * kMillisecond;
  // Daemon configuration shared by every host (the chaos soak harness
  // A/Bs resilience on/off through this).
  endhost::Daemon::Config daemon{};
  // Placement restriction: hosts attach round-robin to these ASes.
  // Empty (the default) means every AS of the topology. Every entry must
  // name an AS the topology knows — the builder rejects unknown IAs.
  std::vector<IsdAs> ases;
  // End-host stack shared by every host. The attack soak runs hosts in
  // kDispatcher mode so hostile floods contend with legitimate traffic
  // for the one shared queue (Section 4.8) — the axis the in-path filter
  // defends.
  endhost::HostStack::Config stack{};
  // Payload sealing: append a LightningFilter authenticator (one
  // LightningSealer per host, derived from filter_secret and the host's
  // AS) to every payload. The defense A/B seals in BOTH arms so the two
  // arms offer byte-identical traffic.
  bool seal_payloads = false;
  Bytes filter_secret;
  // Install an in-path LightningFilter (one per host, config below) at
  // each host stack's ingress — the defenses-on arm.
  bool install_filters = false;
  endhost::LightningFilter::Config filter{};
};

struct WorkloadReport {  // value snapshot, safe to copy around
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t send_failures = 0;
  std::uint64_t failover_sends = 0;  // receipts flagged failover
};

// Builds the host fleet and schedules the whole traffic matrix up front;
// the caller then drives net.sim() (run_for/run_all) and reads report().
class TrafficMatrix {
 public:
  // Validated construction, mirroring endhost::PanContext::Builder: the
  // builder rejects degenerate matrices (fewer than two hosts, zero
  // flows, zero packets per flow, non-positive send rates) and placement
  // over ASes the topology does not contain, so a misconfigured
  // experiment fails at build time with a clear error instead of
  // producing an empty or crashing run. build() returns the constructed
  // (not yet launched) matrix.
  class Builder {
   public:
    Builder& net(controlplane::ScionNetwork& net) {
      net_ = &net;
      return *this;
    }
    Builder& config(WorkloadConfig config) {
      config_ = std::move(config);
      return *this;
    }
    [[nodiscard]] Result<std::unique_ptr<TrafficMatrix>> build() const;

   private:
    controlplane::ScionNetwork* net_ = nullptr;
    WorkloadConfig config_{};
  };

  TrafficMatrix(controlplane::ScionNetwork& net, WorkloadConfig config);
  ~TrafficMatrix();
  TrafficMatrix(const TrafficMatrix&) = delete;
  TrafficMatrix& operator=(const TrafficMatrix&) = delete;

  // Attaches hosts (PAN contexts + sockets) and schedules every flow's
  // sends on the network's simulator.
  [[nodiscard]] Status launch();

  [[nodiscard]] WorkloadReport report() const {
    WorkloadReport snapshot;
    snapshot.packets_sent = sent_.load(std::memory_order_relaxed);
    snapshot.packets_delivered = delivered_.load(std::memory_order_relaxed);
    snapshot.send_failures = send_failures_.load(std::memory_order_relaxed);
    snapshot.failover_sends = failovers_.load(std::memory_order_relaxed);
    return snapshot;
  }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] const endhost::Daemon& daemon(std::size_t host) const {
    return *hosts_[host].daemon;
  }
  [[nodiscard]] const dataplane::Address& host_address(std::size_t host) const {
    return hosts_[host].address;
  }

  // Observer invoked on every delivered packet (after the report counter
  // updates): source address, destination host index, delivery time. The
  // soak harness uses it to time failover gaps per destination. Under the
  // sharded core the callback fires on the destination host's shard
  // thread — observers must either be per-destination (indexed by the
  // host argument; different hosts of one shard never race, different
  // shards need disjoint slots) or internally synchronized.
  void set_on_delivery(
      std::function<void(const dataplane::Address&, std::size_t, SimTime)>
          on_delivery) {
    on_delivery_ = std::move(on_delivery);
  }

  // Observer for deliveries whose payload does NOT carry kLegitMarker —
  // attack/surge traffic that made it through to an application socket.
  // Arguments: the payload's marker byte, destination host index, delivery
  // time; same sharding caveats as set_on_delivery. Foreign deliveries
  // never touch the legitimate report counters.
  void set_on_foreign_delivery(
      std::function<void(std::uint8_t, std::size_t, SimTime)> on_foreign) {
    on_foreign_delivery_ = std::move(on_foreign);
  }

  // Aggregate verdict counters over every installed in-path filter
  // (all zero when install_filters is off).
  [[nodiscard]] endhost::LightningFilter::Stats filter_stats() const;
  // Aggregate host-stack drop/delivery counters over the fleet.
  [[nodiscard]] endhost::HostStack::Stats stack_stats() const;

 private:
  struct Host {
    dataplane::Address address;
    std::unique_ptr<endhost::Daemon> daemon;
    // Declared before ctx: the stack holds a raw pointer to the filter,
    // so the filter must be destroyed after the stack (reverse member
    // order destroys ctx first).
    std::unique_ptr<endhost::LightningFilter> filter;
    std::unique_ptr<endhost::PanContext> ctx;
    std::unique_ptr<endhost::PanSocket> socket;
    // What this host's flows send: the shared payload plus (when sealing)
    // this host's per-AS authenticator — sealed once at launch, zero
    // per-send crypto.
    Bytes send_payload;
  };
  struct Flow {
    std::size_t src = 0;
    std::size_t dst = 0;
  };

  void schedule_flow(const Flow& flow);

  controlplane::ScionNetwork& net_;
  WorkloadConfig config_;
  Rng rng_;
  std::vector<Host> hosts_;
  std::vector<Flow> flows_;
  Bytes payload_;
  // Relaxed atomics: sends bump them on source shards, deliveries on
  // destination shards; report() snapshots after the run (or between
  // windows), when the barrier has ordered everything.
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> send_failures_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::function<void(const dataplane::Address&, std::size_t, SimTime)>
      on_delivery_;
  std::function<void(std::uint8_t, std::size_t, SimTime)>
      on_foreign_delivery_;
};

}  // namespace sciera::workload
