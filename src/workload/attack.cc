#include "workload/attack.h"

#include <string>
#include <utility>
#include <vector>

#include "endhost/lightning_filter.h"

namespace sciera::workload {

namespace {
// Source port stamped on hostile datagrams; victims demux on dst_port
// only, so the value is cosmetic but keeps the wire format honest.
constexpr std::uint16_t kAttackSrcPort = 51000;
// Fabricated ISD for spoofed-source floods — outside every topology this
// repo builds, so spoofed state can never alias a real AS's.
constexpr std::uint64_t kSpoofedIsd = 42;
}  // namespace

const char* attack_kind_name(AttackKind kind) {
  switch (kind) {
    case AttackKind::kForgedFlood: return "forged_flood";
    case AttackKind::kSpoofedFlood: return "spoofed_flood";
    case AttackKind::kFlashCrowd: return "flash_crowd";
  }
  return "unknown";
}

AttackMatrix::AttackMatrix(controlplane::ScionNetwork& net,
                           TrafficMatrix& victims, AttackConfig config)
    : net_(net),
      victims_(victims),
      config_(std::move(config)),
      rng_(config_.seed, "attack-matrix") {}

Status AttackMatrix::validate(const AttackBurst& burst) const {
  if (net_.topology().find_as(burst.source) == nullptr) {
    return Error{Errc::kNotFound,
                 "attack burst origin AS " + burst.source.to_string() +
                     " is not in the topology"};
  }
  if (burst.pps <= 0) {
    return Error{Errc::kInvalidArgument,
                 "attack burst rate must be positive, got " +
                     std::to_string(burst.pps)};
  }
  if (burst.duration <= 0) {
    return Error{Errc::kInvalidArgument,
                 "attack burst duration must be positive, got " +
                     std::to_string(burst.duration)};
  }
  if (burst.kind == AttackKind::kFlashCrowd && config_.filter_secret.empty()) {
    return Error{Errc::kInvalidArgument,
                 "flash-crowd burst needs a filter_secret to seal with"};
  }
  return {};
}

Status AttackMatrix::launch(const AttackBurst& burst) {
  if (auto status = validate(burst); !status.ok()) return status;
  // Victims: every workload host outside the origin AS (intra-AS floods
  // would bypass the inter-domain path the attack is meant to traverse).
  std::vector<std::size_t> pool;
  for (std::size_t i = 0; i < victims_.host_count(); ++i) {
    if (victims_.host_address(i).ia != burst.source) pool.push_back(i);
  }
  if (pool.empty()) {
    return Error{Errc::kInvalidArgument,
                 "attack burst from " + burst.source.to_string() +
                     " has no victims outside the origin AS"};
  }
  dataplane::BorderRouter* router = net_.router(burst.source);
  if (router == nullptr) {
    return Error{Errc::kNotFound, "attack burst origin AS " +
                                      burst.source.to_string() +
                                      " has no border router"};
  }

  // Each burst draws from its own forked stream, keyed by launch ordinal:
  // replaying the same armed plan replays the same packet schedule.
  Rng rng = rng_.fork("burst-" + std::to_string(bursts_launched_++));
  const bool surge = burst.kind == AttackKind::kFlashCrowd;

  // The payload is built once per burst: marker-filled body plus a
  // 16-byte authenticator — valid (sealed per origin AS) for a surge,
  // all-zero (never verifies) for a flood. Zero per-send crypto.
  Bytes data(config_.payload_bytes, surge ? kSurgeMarker : kAttackMarker);
  if (data.empty()) data.push_back(surge ? kSurgeMarker : kAttackMarker);
  if (surge) {
    const endhost::LightningSealer sealer(config_.filter_secret,
                                          burst.source);
    const Bytes tag = sealer.seal(data);
    data.insert(data.end(), tag.begin(), tag.end());
  } else {
    data.insert(data.end(), 16, std::uint8_t{0});
  }

  auto& sim = net_.sim();
  const simnet::Domain domain = net_.domain_of(burst.source);
  const SimTime start = sim.now();
  const SimTime end = start + burst.duration;
  const double mean = static_cast<double>(kSecond) / burst.pps;
  // Paths are resolved once per victim AS at launch time — the network
  // state the compromised sender would see when it starts flooding.
  std::map<IsdAs, dataplane::ScionPath> path_by_as;
  std::uint64_t sequence = 0;
  SimTime t = start;
  for (;;) {
    t += 1 + static_cast<Duration>(rng.exponential(mean));
    if (t >= end) break;
    const std::size_t victim = pool[rng.next_below(pool.size())];
    const dataplane::Address dst = victims_.host_address(victim);
    auto it = path_by_as.find(dst.ia);
    if (it == path_by_as.end()) {
      auto paths = net_.paths(burst.source, dst.ia);
      if (paths.empty()) {
        send_failures_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      it = path_by_as.emplace(dst.ia, paths.front().dataplane_path).first;
    }
    dataplane::ScionPacket packet;
    packet.dst = dst;
    packet.path = it->second;
    packet.payload =
        dataplane::UdpDatagram{kAttackSrcPort, kWorkloadPort, data}
            .serialize();
    switch (burst.kind) {
      case AttackKind::kForgedFlood:
      case AttackKind::kFlashCrowd:
        // Compromised hosts inside the origin AS, a small rotating fleet.
        packet.src = {burst.source,
                      static_cast<std::uint32_t>(0xAA000000 + sequence % 64)};
        break;
      case AttackKind::kSpoofedFlood:
        // Fabricated origin AS per packet: routers never validate the
        // source address, so each one lands as a fresh "source AS" at the
        // victim's filter — the table-exhaustion vector.
        packet.src = {IsdAs::from_packed((kSpoofedIsd << 48) | sequence),
                      0xAA000001};
        break;
    }
    ++sequence;
    schedule_send(domain, t, router, std::move(packet), surge);
  }
  return {};
}

void AttackMatrix::schedule_send(const simnet::Domain& domain, SimTime at,
                                 dataplane::BorderRouter* router,
                                 dataplane::ScionPacket packet, bool surge) {
  net_.sim().schedule(
      domain, at, [this, router, packet = std::move(packet), surge] {
        if (!router->inject(packet).ok()) {
          send_failures_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        (surge ? surge_sent_ : attack_sent_)
            .fetch_add(1, std::memory_order_relaxed);
      });
}

}  // namespace sciera::workload
