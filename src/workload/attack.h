// Deterministic adversarial traffic generator: the hostile counterpart of
// TrafficMatrix. An AttackMatrix aims bursts of attack traffic at the
// workload's hosts — forged-MAC floods from a compromised AS, spoofed-
// source floods that fabricate source ASes, and legitimate flash-crowd
// surges that carry valid authenticators — so the chaos soak can measure
// how much legitimate delivery survives while defenses absorb the rest.
//
// Every burst is armed through the chaos engine like any other fault:
// validated up front, scheduled from one forked Rng stream, and replayed
// byte-identically for a given seed at any worker-thread count. Attack
// sends are injected at the origin AS's border router inside that AS's
// scheduling domain, exactly where a compromised host fleet would sit.
//
// Traffic classes are told apart end to end by the first payload byte:
// legitimate workload packets carry kLegitMarker, flash-crowd surges
// kSurgeMarker (valid authenticator), floods kAttackMarker (garbage
// authenticator). The markers let one delivery callback split legitimate
// from hostile traffic without any side channel.
#pragma once

#include <atomic>
#include <map>

#include "controlplane/control_plane.h"
#include "workload/workload.h"

namespace sciera::workload {

// Flash-crowd surges authenticate like legitimate senders; floods carry
// deliberately invalid authenticators (all-zero tags).
inline constexpr std::uint8_t kSurgeMarker = 0xB5;
inline constexpr std::uint8_t kAttackMarker = 0xE1;

enum class AttackKind {
  kForgedFlood,   // compromised AS, real path, forged authenticators
  kSpoofedFlood,  // fabricated source ASes (filter-table exhaustion)
  kFlashCrowd,    // legitimate surge: valid authenticators, surge marker
};

[[nodiscard]] const char* attack_kind_name(AttackKind kind);

// One burst of hostile traffic, launched at the chaos event's fire time
// and lasting `duration` from there.
struct AttackBurst {
  AttackKind kind = AttackKind::kForgedFlood;
  // Origin: the compromised AS the traffic is injected at (and, for
  // forged/flash bursts, the source AS stamped on the packets).
  IsdAs source;
  double pps = 1000;
  Duration duration = kSecond;
};

struct AttackConfig {
  std::uint64_t seed = 0xA77AC;
  std::size_t payload_bytes = 256;
  // Secret the flash-crowd sealers derive their per-AS keys from; must
  // match the victims' filters for a surge to authenticate.
  Bytes filter_secret;
};

struct AttackReport {  // value snapshot, safe to copy around
  std::uint64_t attack_sent = 0;
  std::uint64_t attack_delivered = 0;  // floods that reached a socket
  std::uint64_t surge_sent = 0;
  std::uint64_t surge_delivered = 0;
  std::uint64_t send_failures = 0;
};

class AttackMatrix {
 public:
  // Victims are the workload's hosts; the matrix resolves their addresses
  // (and the paths toward them) lazily at burst-launch time, after the
  // victim fleet is attached.
  AttackMatrix(controlplane::ScionNetwork& net, TrafficMatrix& victims,
               AttackConfig config);

  // Arm-time validation: a burst that names an AS the topology does not
  // contain, a non-positive rate/duration, or a flash crowd without a
  // filter secret is rejected before the soak starts.
  [[nodiscard]] Status validate(const AttackBurst& burst) const;

  // Schedules every send of the burst from sim.now() onward. Called from
  // the chaos engine's apply path, inside the global domain; the sends
  // themselves land in the origin AS's domain.
  Status launch(const AttackBurst& burst);

  // Wired to TrafficMatrix::set_on_foreign_delivery: counts hostile
  // traffic that made it through to an application socket.
  void note_delivery(std::uint8_t marker) {
    if (marker == kSurgeMarker) {
      surge_delivered_.fetch_add(1, std::memory_order_relaxed);
    } else {
      attack_delivered_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] AttackReport report() const {
    AttackReport snapshot;
    snapshot.attack_sent = attack_sent_.load(std::memory_order_relaxed);
    snapshot.attack_delivered =
        attack_delivered_.load(std::memory_order_relaxed);
    snapshot.surge_sent = surge_sent_.load(std::memory_order_relaxed);
    snapshot.surge_delivered =
        surge_delivered_.load(std::memory_order_relaxed);
    snapshot.send_failures = send_failures_.load(std::memory_order_relaxed);
    return snapshot;
  }

 private:
  // One scheduled hostile send: the packet is fully built at burst-launch
  // time so the send event itself is injection only.
  void schedule_send(const simnet::Domain& domain, SimTime at,
                     dataplane::BorderRouter* router,
                     dataplane::ScionPacket packet, bool surge);

  controlplane::ScionNetwork& net_;
  TrafficMatrix& victims_;
  AttackConfig config_;
  Rng rng_;
  std::size_t bursts_launched_ = 0;
  std::atomic<std::uint64_t> attack_sent_{0};
  std::atomic<std::uint64_t> attack_delivered_{0};
  std::atomic<std::uint64_t> surge_sent_{0};
  std::atomic<std::uint64_t> surge_delivered_{0};
  std::atomic<std::uint64_t> send_failures_{0};
};

}  // namespace sciera::workload
