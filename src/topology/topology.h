// AS-level topology model: ASes, inter-AS links (core / parent-child /
// peering), geographic placement for realistic propagation delays, and
// lookup helpers used by the control plane, the BGP baseline, and the
// resilience simulations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/isd_as.h"
#include "common/result.h"
#include "common/time.h"

namespace sciera::topology {

enum class LinkType : std::uint8_t {
  kCore,         // between core ASes (possibly across ISDs)
  kParentChild,  // provider (a) -> customer (b)
  kPeering,      // non-transit peering between non-core ASes
};

[[nodiscard]] const char* link_type_name(LinkType type);

// Local encapsulation carrying SCION frames over the circuit (Section 2:
// "or other local encapsulations, if present, such as MPLS"; Appendix C:
// SEC could only get a VXLAN over SingAREN).
enum class Encap : std::uint8_t { kVlan = 0, kMpls = 1, kVxlan = 2 };

[[nodiscard]] const char* encap_name(Encap encap);
// Per-frame overhead bytes the encapsulation adds on the wire.
[[nodiscard]] std::size_t encap_overhead(Encap encap);

struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

// Great-circle distance in km.
[[nodiscard]] double great_circle_km(const GeoPoint& a, const GeoPoint& b);
// One-way fiber propagation delay for a geographic distance, including a
// route-stretch factor (fiber never follows the geodesic).
[[nodiscard]] Duration fiber_delay(double distance_km,
                                   double route_stretch = 1.5);

struct AsInfo {
  IsdAs ia;
  std::string name;
  std::string city;
  GeoPoint location{};
  bool core = false;
  // Runs the scion-go-multiping vantage point (Section 5.4).
  bool measurement_point = false;
};

using LinkId = std::uint32_t;

struct LinkInfo {
  LinkId id = 0;
  std::string label;  // stable handle for incident schedules
  IsdAs a;            // for kParentChild: the parent
  IsdAs b;
  IfaceId a_iface = 0;
  IfaceId b_iface = 0;
  LinkType type = LinkType::kCore;
  Duration delay = 5 * kMillisecond;  // one-way propagation
  double bandwidth_bps = 10e9;
  Encap encap = Encap::kVlan;
  bool under_construction = false;

  [[nodiscard]] IsdAs other(IsdAs self) const { return self == a ? b : a; }
  [[nodiscard]] IfaceId iface_of(IsdAs self) const {
    return self == a ? a_iface : b_iface;
  }
  [[nodiscard]] IfaceId iface_of_other(IsdAs self) const {
    return self == a ? b_iface : a_iface;
  }
};

class Topology {
 public:
  // Registers an AS; fails if the ISD-AS already exists.
  Status add_as(AsInfo info);

  // Adds a link; interface ids are auto-assigned per AS (1-based) unless
  // explicitly provided (0 means auto).
  Result<LinkId> add_link(std::string label, IsdAs a, IsdAs b, LinkType type,
                          Duration delay, double bandwidth_bps = 10e9,
                          IfaceId a_iface = 0, IfaceId b_iface = 0);

  // Overrides the local encapsulation of an existing link.
  Status set_link_encap(std::string_view label, Encap encap);

  [[nodiscard]] const AsInfo* find_as(IsdAs ia) const;
  [[nodiscard]] const LinkInfo* find_link(LinkId id) const;
  [[nodiscard]] const LinkInfo* find_link_by_label(std::string_view label) const;

  [[nodiscard]] const std::vector<AsInfo>& ases() const { return ases_; }
  [[nodiscard]] const std::vector<LinkInfo>& links() const { return links_; }

  // Links incident to an AS (indices into links()).
  [[nodiscard]] std::vector<LinkId> links_of(IsdAs ia) const;
  [[nodiscard]] std::vector<IsdAs> core_ases(Isd isd) const;
  [[nodiscard]] std::vector<IsdAs> children_of(IsdAs parent) const;
  [[nodiscard]] std::optional<IsdAs> as_for_iface(IsdAs ia, IfaceId iface) const;
  // The link attached to an AS's interface, if any.
  [[nodiscard]] const LinkInfo* link_at(IsdAs ia, IfaceId iface) const;

  // Total number of distinct ISDs present.
  [[nodiscard]] std::vector<Isd> isds() const;

 private:
  std::vector<AsInfo> ases_;
  std::vector<LinkInfo> links_;
  std::unordered_map<IsdAs, std::size_t> as_index_;
  std::unordered_map<IsdAs, IfaceId> next_iface_;
  std::unordered_map<std::string, LinkId> label_index_;
};

}  // namespace sciera::topology
