// Text serialization for topologies: what the bootstrap server hands to
// end hosts (the "/topology" endpoint, Section 4.1.2) and what operators
// would keep in version control. Round-trips losslessly.
//
// Format, one declaration per line ('#' starts a comment):
//   as <isd-as> [core] [mp] name="..." city="..." lat=<f> lon=<f>
//   link <label> <isd-as> <isd-as> <core|parent|peer> delay_us=<n>
//        bw_mbps=<n> [ifaces=<a>:<b>]
#pragma once

#include <string>

#include "common/result.h"
#include "topology/topology.h"

namespace sciera::topology {

[[nodiscard]] std::string serialize(const Topology& topo);
[[nodiscard]] Result<Topology> parse(std::string_view text);

}  // namespace sciera::topology
