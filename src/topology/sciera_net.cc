#include "topology/sciera_net.h"

#include <cassert>

namespace sciera::topology {
namespace {

IsdAs must_parse(std::string_view text) {
  const auto ia = IsdAs::parse(text);
  assert(ia.has_value());
  return *ia;
}

// PoP city coordinates (approximate, for propagation-delay modelling).
constexpr GeoPoint kAmsterdam{52.37, 4.90};
constexpr GeoPoint kAshburn{39.04, -77.49};
constexpr GeoPoint kChicago{41.88, -87.63};
constexpr GeoPoint kDaejeon{36.35, 127.38};
constexpr GeoPoint kFrankfurt{50.11, 8.68};
constexpr GeoPoint kGeneva{46.20, 6.14};
constexpr GeoPoint kHongKong{22.32, 114.17};
constexpr GeoPoint kJeddah{21.49, 39.19};
constexpr GeoPoint kMcLean{38.93, -77.18};
constexpr GeoPoint kSeattle{47.61, -122.33};
constexpr GeoPoint kSingapore{1.35, 103.82};
constexpr GeoPoint kZurich{47.38, 8.54};
constexpr GeoPoint kSeoul{37.57, 126.98};
constexpr GeoPoint kCampoGrande{-20.44, -54.65};
constexpr GeoPoint kSaoPaulo{-23.55, -46.63};
constexpr GeoPoint kCuritiba{-25.43, -49.27};
constexpr GeoPoint kCharlottesville{38.03, -78.48};
constexpr GeoPoint kPrinceton{40.35, -74.66};
constexpr GeoPoint kMagdeburg{52.13, 11.62};
constexpr GeoPoint kTallinn{59.44, 24.75};
constexpr GeoPoint kAthens{37.98, 23.73};
constexpr GeoPoint kArnhem{51.98, 5.91};
constexpr GeoPoint kAccra{5.60, -0.19};

Duration city_delay(const GeoPoint& a, const GeoPoint& b) {
  return fiber_delay(great_circle_km(a, b));
}

struct AsSpec {
  const char* ia;
  const char* name;
  const char* city;
  GeoPoint location;
  bool core;
  bool measurement;
};

constexpr double kCoreBw = 100e9;
constexpr double kRingBw = 20e9;  // "KREONET SCIONabled a 20 Gbps ring"
constexpr double kLeafBw = 10e9;

}  // namespace

namespace ases {
IsdAs geant() { return must_parse("71-20965"); }
IsdAs bridges() { return must_parse("71-2:0:35"); }
IsdAs switch71() { return must_parse("71-559"); }
IsdAs kisti_dj() { return must_parse("71-2:0:3b"); }
IsdAs kisti_hk() { return must_parse("71-2:0:3c"); }
IsdAs kisti_sg() { return must_parse("71-2:0:3d"); }
IsdAs kisti_ams() { return must_parse("71-2:0:3e"); }
IsdAs kisti_chg() { return must_parse("71-2:0:3f"); }
IsdAs kisti_stl() { return must_parse("71-2:0:40"); }
IsdAs switch64() { return must_parse("64-559"); }
IsdAs eth() { return must_parse("64-2:0:9"); }
IsdAs sidn() { return must_parse("71-1140"); }
IsdAs demokritos() { return must_parse("71-2546"); }
IsdAs ovgu() { return must_parse("71-2:0:42"); }
IsdAs cybexer() { return must_parse("71-2:0:49"); }
IsdAs ccdcoe() { return must_parse("71-203311"); }
IsdAs wacren() { return must_parse("71-37288"); }
IsdAs uva() { return must_parse("71-225"); }
IsdAs princeton() { return must_parse("71-88"); }
IsdAs equinix() { return must_parse("71-2:0:48"); }
IsdAs fabric() { return must_parse("71-398900"); }
IsdAs rnp() { return must_parse("71-1916"); }
IsdAs ufms() { return must_parse("71-2:0:5c"); }
IsdAs ufpr() { return must_parse("71-10881"); }
IsdAs kaust() { return must_parse("71-50999"); }
IsdAs sec() { return must_parse("71-2:0:18"); }
IsdAs nus() { return must_parse("71-2:0:61"); }
IsdAs korea_univ() { return must_parse("71-2:0:4a"); }
IsdAs cityu() { return must_parse("71-4158"); }
}  // namespace ases

Topology build_sciera(const ScieraOptions& options) {
  Topology topo;

  const AsSpec specs[] = {
      // Core ASes (Tier-1 providers).
      {"71-20965", "GEANT", "Frankfurt", kFrankfurt, true, true},
      {"71-2:0:35", "BRIDGES", "McLean", kMcLean, true, false},
      {"71-559", "SWITCH", "Geneva", kGeneva, true, true},
      {"71-2:0:3b", "KISTI DJ", "Daejeon", kDaejeon, true, true},
      {"71-2:0:3c", "KISTI HK", "Hong Kong", kHongKong, true, false},
      {"71-2:0:3d", "KISTI SG", "Singapore", kSingapore, true, true},
      {"71-2:0:3e", "KISTI AMS", "Amsterdam", kAmsterdam, true, true},
      {"71-2:0:3f", "KISTI CHG", "Chicago", kChicago, true, true},
      {"71-2:0:40", "KISTI STL", "Seattle", kSeattle, true, false},
      // Swiss ISD (connected via SWITCH; early SCION adopters).
      {"64-559", "SWITCH (ISD 64)", "Zurich", kZurich, true, false},
      {"64-2:0:9", "ETH Zurich", "Zurich", kZurich, false, false},
      // European leaves.
      {"71-1140", "SIDN Labs", "Arnhem", kArnhem, false, true},
      {"71-2546", "NCSR Demokritos", "Athens", kAthens, false, false},
      {"71-2:0:42", "OVGU Magdeburg", "Magdeburg", kMagdeburg, false, true},
      {"71-2:0:49", "CybExer", "Tallinn", kTallinn, false, false},
      {"71-203311", "CCDCoE", "Tallinn", kTallinn, false, false},
      // Africa.
      {"71-37288", "WACREN", "Accra", kAccra, false, false},
      // North America.
      {"71-225", "UVa", "Charlottesville", kCharlottesville, false, true},
      {"71-88", "Princeton", "Princeton", kPrinceton, false, false},
      {"71-2:0:48", "Equinix", "Ashburn", kAshburn, false, true},
      {"71-398900", "FABRIC", "McLean", kMcLean, false, false},
      // South America.
      {"71-1916", "RNP", "Sao Paulo", kSaoPaulo, false, false},
      {"71-2:0:5c", "UFMS", "Campo Grande", kCampoGrande, false, true},
      {"71-10881", "UFPR", "Curitiba", kCuritiba, false, false},
      // Asia / Middle East leaves.
      {"71-50999", "KAUST", "Jeddah", kJeddah, false, false},
      {"71-2:0:18", "SEC", "Singapore", kSingapore, false, false},
      {"71-2:0:61", "NUS", "Singapore", kSingapore, false, false},
      {"71-2:0:4a", "Korea University", "Seoul", kSeoul, false, true},
      {"71-4158", "CityU HK", "Hong Kong", kHongKong, false, false},
  };
  for (const auto& spec : specs) {
    if (!options.include_under_construction &&
        must_parse(spec.ia) == ases::ufpr()) {
      continue;
    }
    AsInfo info;
    info.ia = must_parse(spec.ia);
    info.name = spec.name;
    info.city = spec.city;
    info.location = spec.location;
    info.core = spec.core;
    info.measurement_point = spec.measurement;
    const auto status = topo.add_as(std::move(info));
    assert(status.ok());
    (void)status;
  }

  struct LinkSpec {
    const char* label;
    IsdAs a, b;
    LinkType type;
    GeoPoint ga, gb;
    double bw;
    bool optional_post_jan25 = false;
    bool under_construction = false;
  };
  using enum LinkType;
  namespace a = ases;
  const LinkSpec link_specs[] = {
      // --- Core mesh: Europe.
      {"geant-switch71", a::geant(), a::switch71(), kCore, kFrankfurt, kGeneva, kCoreBw},
      {"geant-kisti-ams", a::geant(), a::kisti_ams(), kCore, kFrankfurt, kAmsterdam, kCoreBw},
      {"switch71-switch64", a::switch71(), a::switch64(), kCore, kGeneva, kZurich, kCoreBw},
      // --- Transatlantic / transpacific core.
      {"geant-bridges", a::geant(), a::bridges(), kCore, kFrankfurt, kMcLean, kCoreBw},
      {"geant-bridges-2", a::geant(), a::bridges(), kCore, kFrankfurt, kMcLean, kCoreBw, true},
      {"kisti-ams-bridges", a::kisti_ams(), a::bridges(), kCore, kAmsterdam, kMcLean, kCoreBw, true},
      {"geant-kisti-sg", a::geant(), a::kisti_sg(), kCore, kFrankfurt, kSingapore, kCoreBw},
      {"bridges-kisti-chg", a::bridges(), a::kisti_chg(), kCore, kMcLean, kChicago, kCoreBw},
      // --- KREONET northern-hemisphere ring (20 Gbps, Section 4.7.1):
      // Amsterdam - Chicago - Seattle - Daejeon - Hong Kong - Singapore - Amsterdam.
      {"kreonet-ams-chg", a::kisti_ams(), a::kisti_chg(), kCore, kAmsterdam, kChicago, kRingBw},
      {"kreonet-chg-stl", a::kisti_chg(), a::kisti_stl(), kCore, kChicago, kSeattle, kRingBw},
      {"kreonet-stl-dj", a::kisti_stl(), a::kisti_dj(), kCore, kSeattle, kDaejeon, kRingBw},
      {"kreonet-dj-hk", a::kisti_dj(), a::kisti_hk(), kCore, kDaejeon, kHongKong, kRingBw},
      {"kreonet-hk-sg", a::kisti_hk(), a::kisti_sg(), kCore, kHongKong, kSingapore, kRingBw},
      {"kreonet-sg-ams", a::kisti_sg(), a::kisti_ams(), kCore, kSingapore, kAmsterdam, kRingBw},
      // Parallel Singapore<->Amsterdam channels: CAE-1 and KAUST I & II
      // ("leading to four distinct paths", Section 3.2).
      {"cae1-sg-ams", a::kisti_sg(), a::kisti_ams(), kCore, kSingapore, kAmsterdam, kCoreBw},
      {"kaust1-sg-ams", a::kisti_sg(), a::kisti_ams(), kCore, kSingapore, kAmsterdam, kCoreBw},
      {"kaust2-sg-ams", a::kisti_sg(), a::kisti_ams(), kCore, kSingapore, kAmsterdam, kCoreBw},
      // --- European leaves on GEANT (GEANT Plus L2 circuits).
      {"geant-sidn", a::geant(), a::sidn(), kParentChild, kFrankfurt, kArnhem, kLeafBw},
      {"geant-demokritos", a::geant(), a::demokritos(), kParentChild, kFrankfurt, kAthens, kLeafBw},
      {"geant-ovgu", a::geant(), a::ovgu(), kParentChild, kFrankfurt, kMagdeburg, kLeafBw},
      {"geant-cybexer", a::geant(), a::cybexer(), kParentChild, kFrankfurt, kTallinn, kLeafBw},
      {"geant-ccdcoe", a::geant(), a::ccdcoe(), kParentChild, kFrankfurt, kTallinn, kLeafBw},
      // WACREN: two VLANs between GEANT and WACREN@London (Section 3.2).
      {"geant-wacren-1", a::geant(), a::wacren(), kParentChild, kFrankfurt, kAccra, kLeafBw},
      {"geant-wacren-2", a::geant(), a::wacren(), kParentChild, kFrankfurt, kAccra, kLeafBw},
      // ETH hangs off the Swiss ISD core.
      {"switch64-eth", a::switch64(), a::eth(), kParentChild, kZurich, kZurich, kLeafBw},
      // --- North America: institutions via BRIDGES / Internet2 VLANs.
      {"bridges-uva", a::bridges(), a::uva(), kParentChild, kMcLean, kCharlottesville, kLeafBw},
      {"bridges-uva-2", a::bridges(), a::uva(), kParentChild, kMcLean, kCharlottesville, kLeafBw},
      {"bridges-princeton", a::bridges(), a::princeton(), kParentChild, kMcLean, kPrinceton, kLeafBw},
      {"bridges-equinix", a::bridges(), a::equinix(), kParentChild, kMcLean, kAshburn, kLeafBw},
      {"bridges-fabric", a::bridges(), a::fabric(), kParentChild, kMcLean, kMcLean, kLeafBw},
      // Internet2 AL2S multipoint VLAN peering (Appendix C).
      {"i2-uva-princeton", a::uva(), a::princeton(), kPeering, kCharlottesville, kPrinceton, kLeafBw},
      // --- South America: RNP dual-homed to GEANT and BRIDGES.
      {"geant-rnp", a::geant(), a::rnp(), kParentChild, kFrankfurt, kSaoPaulo, kLeafBw},
      {"bridges-rnp", a::bridges(), a::rnp(), kParentChild, kMcLean, kSaoPaulo, kLeafBw},
      {"rnp-ufms", a::rnp(), a::ufms(), kParentChild, kSaoPaulo, kCampoGrande, kLeafBw},
      {"rnp-ufms-2", a::rnp(), a::ufms(), kParentChild, kSaoPaulo, kCampoGrande, kLeafBw},
      {"rnp-ufpr", a::rnp(), a::ufpr(), kParentChild, kSaoPaulo, kCuritiba, kLeafBw, false, true},
      // --- Asia / Middle East leaves.
      {"kisti-sg-sec", a::kisti_sg(), a::sec(), kParentChild, kSingapore, kSingapore, kLeafBw},
      {"kisti-sg-nus", a::kisti_sg(), a::nus(), kParentChild, kSingapore, kSingapore, kLeafBw},
      {"sec-nus-peering", a::sec(), a::nus(), kPeering, kSingapore, kSingapore, kLeafBw},
      {"kisti-dj-korea-univ", a::kisti_dj(), a::korea_univ(), kParentChild, kDaejeon, kSeoul, kLeafBw},
      {"kisti-dj-korea-univ-2", a::kisti_dj(), a::korea_univ(), kParentChild, kDaejeon, kSeoul, kLeafBw},
      {"kisti-hk-cityu", a::kisti_hk(), a::cityu(), kParentChild, kHongKong, kHongKong, kLeafBw},
      {"kisti-sg-kaust", a::kisti_sg(), a::kaust(), kParentChild, kSingapore, kJeddah, kLeafBw},
      {"geant-kaust", a::geant(), a::kaust(), kParentChild, kFrankfurt, kJeddah, kLeafBw},
  };

  for (const auto& spec : link_specs) {
    if (spec.optional_post_jan25 && !options.post_jan25_eu_us_links) continue;
    if (spec.under_construction && !options.include_under_construction) continue;
    auto id = topo.add_link(spec.label, spec.a, spec.b, spec.type,
                            city_delay(spec.ga, spec.gb), spec.bw);
    assert(id.ok());
    (void)id;
  }
  // "It was not possible in their case to establish a native VLAN ...
  // but only a VXLAN over SingAREN" (Appendix C).
  const auto encap_status = topo.set_link_encap("kisti-sg-sec", Encap::kVxlan);
  assert(encap_status.ok());
  (void)encap_status;

  return topo;
}

std::vector<IsdAs> measurement_ases() {
  namespace a = ases;
  return {
      // Europe (5)
      a::geant(), a::kisti_ams(), a::sidn(), a::ovgu(), a::switch71(),
      // Asia (2)
      a::kisti_dj(), a::korea_univ(),
      // North America (3)
      a::uva(), a::equinix(), a::kisti_chg(),
      // South America (1)
      a::ufms(),
  };
}

std::vector<IsdAs> path_matrix_ases() {
  namespace a = ases;
  // Row order of Figure 8, bottom to top reversed: the figure lists
  // 71-2:0:5c, 71-2:0:4a, 71-2:0:48, 71-2:0:3f, 71-2:0:3e, 71-2:0:3d,
  // 71-2:0:3b, 71-225, 71-20965.
  return {a::ufms(),      a::korea_univ(), a::equinix(),
          a::kisti_chg(), a::kisti_ams(),  a::kisti_sg(),
          a::kisti_dj(),  a::uva(),        a::geant()};
}

std::vector<PopInfo> sciera_pops() {
  return {
      {"Amsterdam, NL", "GEANT/KREONET", "Netherlight"},
      {"Ashburn, US", "BRIDGES", "Internet2/MARIA"},
      {"Chicago, US", "KREONET", "Internet2/StarLight"},
      {"Daejeon, KR", "KREONET", "KISTI"},
      {"Frankfurt, DE", "GEANT", ""},
      {"Geneva, CH", "GEANT", "CERN/SWITCH"},
      {"Hong Kong, HK", "KREONET", "CSTNet/HARNET"},
      {"Jacksonville, US", "RNP", "Internet2/AtlanticWave"},
      {"Jeddah, SA", "GEANT/KREONET", "KAUST"},
      {"Lisbon, PT", "GEANT/RNP", "RedCLARA"},
      {"London, GB", "GEANT/WACREN", "AfricaConnect"},
      {"Madrid, ES", "GEANT/RNP", "RedCLARA"},
      {"McLean, US", "BRIDGES", "Internet2/WIX"},
      {"Paris, FR", "GEANT", "SWITCH"},
      {"Seattle, US", "KREONET", "Internet2/PacificWave"},
      {"Singapore, SG", "GEANT/KREONET", "SingAREN"},
  };
}

}  // namespace sciera::topology
