#include "topology/parser.h"

#include <charconv>

#include "common/strings.h"

namespace sciera::topology {
namespace {

std::string quote(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

// Tokenizes a line honoring double-quoted strings (kept as single tokens,
// quotes stripped, backslash escapes resolved).
Result<std::vector<std::string>> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size()) break;
    std::string token;
    bool in_quotes = false;
    while (i < line.size()) {
      const char c = line[i];
      if (in_quotes) {
        if (c == '\\' && i + 1 < line.size()) {
          token.push_back(line[i + 1]);
          i += 2;
          continue;
        }
        if (c == '"') {
          in_quotes = false;
          ++i;
          continue;
        }
        token.push_back(c);
        ++i;
      } else {
        if (c == '"') {
          in_quotes = true;
          ++i;
          continue;
        }
        if (c == ' ' || c == '\t') break;
        token.push_back(c);
        ++i;
      }
    }
    if (in_quotes) return Error{Errc::kParseError, "unterminated quote"};
    out.push_back(std::move(token));
  }
  return out;
}

struct KeyValues {
  std::vector<std::pair<std::string, std::string>> pairs;
  std::vector<std::string> flags;

  [[nodiscard]] const std::string* get(std::string_view key) const {
    for (const auto& [k, v] : pairs) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] bool has_flag(std::string_view flag) const {
    for (const auto& f : flags) {
      if (f == flag) return true;
    }
    return false;
  }
};

KeyValues classify(const std::vector<std::string>& tokens, std::size_t from) {
  KeyValues kv;
  for (std::size_t i = from; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      kv.flags.push_back(tokens[i]);
    } else {
      kv.pairs.emplace_back(tokens[i].substr(0, eq), tokens[i].substr(eq + 1));
    }
  }
  return kv;
}

Result<double> parse_double(const std::string& text) {
  double value = 0;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) {
    return Error{Errc::kParseError, "bad number: " + text};
  }
  return value;
}

Result<std::int64_t> parse_int(const std::string& text) {
  std::int64_t value = 0;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) {
    return Error{Errc::kParseError, "bad integer: " + text};
  }
  return value;
}

}  // namespace

std::string serialize(const Topology& topo) {
  std::string out = "# sciera topology v1\n";
  for (const auto& as_info : topo.ases()) {
    out += "as " + as_info.ia.to_string();
    if (as_info.core) out += " core";
    if (as_info.measurement_point) out += " mp";
    out += " name=" + quote(as_info.name);
    out += " city=" + quote(as_info.city);
    out += strformat(" lat=%.4f lon=%.4f", as_info.location.lat_deg,
                     as_info.location.lon_deg);
    out += "\n";
  }
  for (const auto& link : topo.links()) {
    const char* type = link.type == LinkType::kCore ? "core"
                       : link.type == LinkType::kParentChild ? "parent"
                                                             : "peer";
    out += strformat(
        "link %s %s %s %s delay_us=%lld bw_mbps=%lld ifaces=%u:%u encap=%s\n",
        quote(link.label).c_str(), link.a.to_string().c_str(),
        link.b.to_string().c_str(), type,
        static_cast<long long>(link.delay / kMicrosecond),
        static_cast<long long>(link.bandwidth_bps / 1e6), link.a_iface,
        link.b_iface, encap_name(link.encap));
  }
  return out;
}

Result<Topology> parse(std::string_view text) {
  Topology topo;
  int line_no = 0;
  for (const auto line_raw : split(text, '\n')) {
    ++line_no;
    auto line = trim(line_raw);
    const auto hash = line.find('#');
    if (hash != std::string_view::npos) line = trim(line.substr(0, hash));
    if (line.empty()) continue;

    auto tokens_result = tokenize(line);
    if (!tokens_result) return tokens_result.error();
    const auto& tokens = tokens_result.value();
    const auto fail = [&](const std::string& why) -> Error {
      return Error{Errc::kParseError,
                   strformat("line %d: %s", line_no, why.c_str())};
    };

    if (tokens[0] == "as") {
      if (tokens.size() < 2) return fail("'as' needs an ISD-AS");
      const auto ia = IsdAs::parse(tokens[1]);
      if (!ia) return fail("bad ISD-AS: " + tokens[1]);
      const auto kv = classify(tokens, 2);
      AsInfo info;
      info.ia = *ia;
      info.core = kv.has_flag("core");
      info.measurement_point = kv.has_flag("mp");
      if (const auto* name = kv.get("name")) info.name = *name;
      if (const auto* city = kv.get("city")) info.city = *city;
      if (const auto* lat = kv.get("lat")) {
        auto v = parse_double(*lat);
        if (!v) return fail(v.error().message);
        info.location.lat_deg = *v;
      }
      if (const auto* lon = kv.get("lon")) {
        auto v = parse_double(*lon);
        if (!v) return fail(v.error().message);
        info.location.lon_deg = *v;
      }
      if (auto status = topo.add_as(std::move(info)); !status.ok()) {
        return fail(status.error().message);
      }
    } else if (tokens[0] == "link") {
      if (tokens.size() < 5) return fail("'link' needs label, 2 ASes, type");
      const auto a = IsdAs::parse(tokens[2]);
      const auto b = IsdAs::parse(tokens[3]);
      if (!a || !b) return fail("bad ISD-AS in link");
      LinkType type;
      if (tokens[4] == "core") {
        type = LinkType::kCore;
      } else if (tokens[4] == "parent") {
        type = LinkType::kParentChild;
      } else if (tokens[4] == "peer") {
        type = LinkType::kPeering;
      } else {
        return fail("unknown link type: " + tokens[4]);
      }
      const auto kv = classify(tokens, 5);
      Duration delay = 5 * kMillisecond;
      double bw = 10e9;
      IfaceId a_iface = 0, b_iface = 0;
      if (const auto* d = kv.get("delay_us")) {
        auto v = parse_int(*d);
        if (!v) return fail(v.error().message);
        delay = *v * kMicrosecond;
      }
      if (const auto* w = kv.get("bw_mbps")) {
        auto v = parse_int(*w);
        if (!v) return fail(v.error().message);
        bw = static_cast<double>(*v) * 1e6;
      }
      if (const auto* ifaces = kv.get("ifaces")) {
        const auto parts = split(*ifaces, ':');
        if (parts.size() != 2) return fail("ifaces must be <a>:<b>");
        auto ia_if = parse_int(std::string{parts[0]});
        auto ib_if = parse_int(std::string{parts[1]});
        if (!ia_if || !ib_if) return fail("bad iface ids");
        a_iface = static_cast<IfaceId>(*ia_if);
        b_iface = static_cast<IfaceId>(*ib_if);
      }
      auto id = topo.add_link(tokens[1], *a, *b, type, delay, bw, a_iface,
                              b_iface);
      if (!id) return fail(id.error().message);
      if (const auto* encap = kv.get("encap")) {
        Encap kind;
        if (*encap == "vlan") {
          kind = Encap::kVlan;
        } else if (*encap == "mpls") {
          kind = Encap::kMpls;
        } else if (*encap == "vxlan") {
          kind = Encap::kVxlan;
        } else {
          return fail("unknown encapsulation: " + *encap);
        }
        (void)topo.set_link_encap(tokens[1], kind);
      }
    } else {
      return fail("unknown declaration: " + tokens[0]);
    }
  }
  return topo;
}

}  // namespace sciera::topology
