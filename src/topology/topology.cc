#include "topology/topology.h"

#include <cmath>

namespace sciera::topology {

const char* link_type_name(LinkType type) {
  switch (type) {
    case LinkType::kCore: return "core";
    case LinkType::kParentChild: return "parent-child";
    case LinkType::kPeering: return "peering";
  }
  return "?";
}

const char* encap_name(Encap encap) {
  switch (encap) {
    case Encap::kVlan: return "vlan";
    case Encap::kMpls: return "mpls";
    case Encap::kVxlan: return "vxlan";
  }
  return "?";
}

std::size_t encap_overhead(Encap encap) {
  switch (encap) {
    case Encap::kVlan: return 4;    // 802.1Q tag
    case Encap::kMpls: return 4;    // one label
    case Encap::kVxlan: return 50;  // outer Ethernet+IP+UDP+VXLAN
  }
  return 0;
}

double great_circle_km(const GeoPoint& a, const GeoPoint& b) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDegToRad = M_PI / 180.0;
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

Duration fiber_delay(double distance_km, double route_stretch) {
  // Light in fiber travels ~204 km/ms.
  constexpr double kFiberKmPerMs = 204.0;
  const double ms = distance_km * route_stretch / kFiberKmPerMs;
  // Floor of 150us models local switching even for co-located sites.
  return std::max<Duration>(from_ms(ms), 150 * kMicrosecond);
}

Status Topology::add_as(AsInfo info) {
  if (as_index_.contains(info.ia)) {
    return Error{Errc::kInvalidArgument,
                 "duplicate AS " + info.ia.to_string()};
  }
  as_index_.emplace(info.ia, ases_.size());
  next_iface_.emplace(info.ia, 1);
  ases_.push_back(std::move(info));
  return {};
}

Result<LinkId> Topology::add_link(std::string label, IsdAs a, IsdAs b,
                                  LinkType type, Duration delay,
                                  double bandwidth_bps, IfaceId a_iface,
                                  IfaceId b_iface) {
  if (!as_index_.contains(a) || !as_index_.contains(b)) {
    return Error{Errc::kNotFound, "link endpoints must be registered ASes"};
  }
  if (a == b) {
    return Error{Errc::kInvalidArgument, "self-links are not allowed"};
  }
  if (label_index_.contains(label)) {
    return Error{Errc::kInvalidArgument, "duplicate link label " + label};
  }
  LinkInfo link;
  link.id = static_cast<LinkId>(links_.size());
  link.label = label;
  link.a = a;
  link.b = b;
  link.a_iface = a_iface != 0 ? a_iface : next_iface_[a]++;
  link.b_iface = b_iface != 0 ? b_iface : next_iface_[b]++;
  link.type = type;
  link.delay = delay;
  link.bandwidth_bps = bandwidth_bps;
  label_index_.emplace(std::move(label), link.id);
  links_.push_back(link);
  return link.id;
}

Status Topology::set_link_encap(std::string_view label, Encap encap) {
  const auto it = label_index_.find(std::string{label});
  if (it == label_index_.end()) {
    return Error{Errc::kNotFound, "no link " + std::string{label}};
  }
  links_[it->second].encap = encap;
  return {};
}

const AsInfo* Topology::find_as(IsdAs ia) const {
  const auto it = as_index_.find(ia);
  return it == as_index_.end() ? nullptr : &ases_[it->second];
}

const LinkInfo* Topology::find_link(LinkId id) const {
  return id < links_.size() ? &links_[id] : nullptr;
}

const LinkInfo* Topology::find_link_by_label(std::string_view label) const {
  const auto it = label_index_.find(std::string{label});
  return it == label_index_.end() ? nullptr : &links_[it->second];
}

std::vector<LinkId> Topology::links_of(IsdAs ia) const {
  std::vector<LinkId> out;
  for (const auto& link : links_) {
    if (link.a == ia || link.b == ia) out.push_back(link.id);
  }
  return out;
}

std::vector<IsdAs> Topology::core_ases(Isd isd) const {
  std::vector<IsdAs> out;
  for (const auto& as_info : ases_) {
    if (as_info.core && as_info.ia.isd() == isd) out.push_back(as_info.ia);
  }
  return out;
}

std::vector<IsdAs> Topology::children_of(IsdAs parent) const {
  std::vector<IsdAs> out;
  for (const auto& link : links_) {
    if (link.type == LinkType::kParentChild && link.a == parent) {
      out.push_back(link.b);
    }
  }
  return out;
}

const LinkInfo* Topology::link_at(IsdAs ia, IfaceId iface) const {
  for (const auto& link : links_) {
    if ((link.a == ia && link.a_iface == iface) ||
        (link.b == ia && link.b_iface == iface)) {
      return &link;
    }
  }
  return nullptr;
}

std::optional<IsdAs> Topology::as_for_iface(IsdAs ia, IfaceId iface) const {
  for (const auto& link : links_) {
    if (link.a == ia && link.a_iface == iface) return link.b;
    if (link.b == ia && link.b_iface == iface) return link.a;
  }
  return std::nullopt;
}

std::vector<Isd> Topology::isds() const {
  std::vector<Isd> out;
  for (const auto& as_info : ases_) {
    if (std::find(out.begin(), out.end(), as_info.ia.isd()) == out.end()) {
      out.push_back(as_info.ia.isd());
    }
  }
  return out;
}

}  // namespace sciera::topology
