// The concrete SCIERA deployment of Figure 1 / Table 1: every AS, link,
// PoP, and measurement vantage point of the paper, with propagation delays
// derived from the real PoP city coordinates.
#pragma once

#include <string>
#include <vector>

#include "topology/topology.h"

namespace sciera::topology {

struct ScieraOptions {
  // Include links marked "under construction" in Figure 1 (UFPR).
  bool include_under_construction = false;
  // Include the additional EU<->US core links that became available after
  // January 25th of the measurement campaign (Section 5.4 / Figure 7).
  bool post_jan25_eu_us_links = true;
};

// Builds the full SCIERA topology (ISD 71 plus the two ISD-64 ASes
// reachable via SWITCH).
[[nodiscard]] Topology build_sciera(const ScieraOptions& options = {});

// Well-known ISD-AS handles, parsed from the paper's identifiers.
namespace ases {
IsdAs geant();        // 71-20965, core (Frankfurt)
IsdAs bridges();      // 71-2:0:35, core (McLean)
IsdAs switch71();     // 71-559, core (Geneva)
IsdAs kisti_dj();     // 71-2:0:3b, core (Daejeon)
IsdAs kisti_hk();     // 71-2:0:3c, core (Hong Kong)
IsdAs kisti_sg();     // 71-2:0:3d, core (Singapore)
IsdAs kisti_ams();    // 71-2:0:3e, core (Amsterdam)
IsdAs kisti_chg();    // 71-2:0:3f, core (Chicago)
IsdAs kisti_stl();    // 71-2:0:40, core (Seattle)
IsdAs switch64();     // 64-559, core of the Swiss ISD
IsdAs eth();          // 64-2:0:9
IsdAs sidn();         // 71-1140
IsdAs demokritos();   // 71-2546
IsdAs ovgu();         // 71-2:0:42
IsdAs cybexer();      // 71-2:0:49
IsdAs ccdcoe();       // 71-203311
IsdAs wacren();       // 71-37288
IsdAs uva();          // 71-225
IsdAs princeton();    // 71-88
IsdAs equinix();      // 71-2:0:48
IsdAs fabric();       // 71-398900
IsdAs rnp();          // 71-1916
IsdAs ufms();         // 71-2:0:5c
IsdAs ufpr();         // 71-10881 (under construction)
IsdAs kaust();        // 71-50999
IsdAs sec();          // 71-2:0:18
IsdAs nus();          // 71-2:0:61
IsdAs korea_univ();   // 71-2:0:4a
IsdAs cityu();        // 71-4158
}  // namespace ases

// The 11 ASes running scion-go-multiping (5 EU, 2 Asia, 3 NA, 1 SA).
[[nodiscard]] std::vector<IsdAs> measurement_ases();

// The 9 ASes of the Figure 8/9 path matrices, in the figure's row order.
[[nodiscard]] std::vector<IsdAs> path_matrix_ases();

// Table 1: SCIERA PoPs and collaborating networks.
struct PopInfo {
  std::string location;
  std::string peering_nrens;
  std::string partner_networks;
};
[[nodiscard]] std::vector<PopInfo> sciera_pops();

}  // namespace sciera::topology
