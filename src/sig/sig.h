// SCION-IP Gateway (SIG): IP-to-SCION-to-IP packet-level translation —
// what every productive use case ran before native applications existed
// (abstract, §1), and the heart of Appendix B's Edge (non-AS) model: a
// site plugs a SIG appliance in and its unmodified IP hosts transparently
// communicate over SCION.
//
// Two SIGs pair up through traffic rules mapping remote IP prefixes to the
// remote SIG's SCION address; legacy IPv4 packets are encapsulated whole
// into SCION/UDP and released on the far side.
#pragma once

#include <memory>

#include "endhost/daemon.h"
#include "endhost/dispatcher.h"
#include "endhost/policy.h"

namespace sciera::sig {

// A legacy IPv4 packet as the SIG sees it.
struct IpPacket {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint8_t protocol = 17;
  Bytes payload;

  [[nodiscard]] Bytes serialize() const;
  static Result<IpPacket> parse(BytesView bytes);

  friend bool operator==(const IpPacket&, const IpPacket&) = default;
};

struct IpPrefix {
  std::uint32_t address = 0;
  int length = 24;

  [[nodiscard]] bool contains(std::uint32_t ip) const {
    if (length <= 0) return true;
    const std::uint32_t mask =
        length >= 32 ? 0xFFFFFFFFu : ~((1u << (32 - length)) - 1);
    return (ip & mask) == (address & mask);
  }
};

class ScionIpGateway {
 public:
  struct Stats {  // registry-backed snapshot
    std::uint64_t encapsulated = 0;
    std::uint64_t decapsulated = 0;
    std::uint64_t no_rule = 0;
    std::uint64_t send_failures = 0;
  };

  // The handler receiving decapsulated IP packets for the local LAN.
  using IpDelivery = std::function<void(const IpPacket& packet, SimTime)>;

  // The SIG binds a well-known port on its host stack and uses a daemon
  // for paths (Edge model: the appliance carries the whole stack).
  ScionIpGateway(controlplane::ScionNetwork& net, dataplane::Address addr,
                 IpDelivery delivery);

  // Traffic rule: IP packets for `prefix` tunnel to the SIG at `remote`.
  void add_rule(IpPrefix prefix, dataplane::Address remote);

  // Path policy applied to tunnel traffic (e.g. geofencing).
  void set_policy(endhost::PathPolicy policy) { policy_ = std::move(policy); }

  // Entry point from the legacy LAN side.
  Status send_ip(const IpPacket& packet);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const dataplane::Address& address() const {
    return stack_.address();
  }

  static constexpr std::uint16_t kSigPort = 30256;

 private:
  void on_tunnel_packet(const dataplane::ScionPacket& packet,
                        const dataplane::UdpDatagram& datagram,
                        SimTime arrival);

  controlplane::ScionNetwork& net_;
  endhost::HostStack stack_;
  endhost::Daemon daemon_;
  endhost::PathPolicy policy_;
  IpDelivery delivery_;
  std::vector<std::pair<IpPrefix, dataplane::Address>> rules_;
  obs::Counter* encapsulated_ = nullptr;
  obs::Counter* decapsulated_ = nullptr;
  obs::Counter* no_rule_ = nullptr;
  obs::Counter* send_failures_ = nullptr;
};

}  // namespace sciera::sig
