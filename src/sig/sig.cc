#include "sig/sig.h"

namespace sciera::sig {

Bytes IpPacket::serialize() const {
  Writer w;
  w.u32(src_ip);
  w.u32(dst_ip);
  w.u8(protocol);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  return std::move(w).take();
}

Result<IpPacket> IpPacket::parse(BytesView bytes) {
  Reader r{bytes};
  auto src = r.u32();
  auto dst = r.u32();
  auto proto = r.u8();
  auto len = r.u32();
  if (!src || !dst || !proto || !len) {
    return Error{Errc::kParseError, "truncated IP header"};
  }
  auto payload = r.raw(*len);
  if (!payload) return payload.error();
  IpPacket packet;
  packet.src_ip = *src;
  packet.dst_ip = *dst;
  packet.protocol = *proto;
  packet.payload = std::move(payload).value();
  return packet;
}

ScionIpGateway::ScionIpGateway(controlplane::ScionNetwork& net,
                               dataplane::Address addr, IpDelivery delivery)
    : net_(net),
      stack_(net, addr),
      daemon_(net, addr.ia),
      delivery_(std::move(delivery)) {
  auto& registry = obs::MetricsRegistry::global();
  const obs::Labels base{
      {"sig", registry.instance_label("sig", addr.to_string())}};
  encapsulated_ = &registry.counter("sciera_sig_encapsulated_total", base);
  decapsulated_ = &registry.counter("sciera_sig_decapsulated_total", base);
  const auto dropped = [&](const char* reason) {
    obs::Labels labels = base;
    labels.emplace_back("reason", reason);
    return &registry.counter("sciera_sig_dropped_total", labels);
  };
  no_rule_ = dropped("no_rule");
  send_failures_ = dropped("send_failure");
  (void)stack_.bind(kSigPort,
                    [this](const dataplane::ScionPacket& packet,
                           const dataplane::UdpDatagram& datagram,
                           SimTime arrival) {
                      on_tunnel_packet(packet, datagram, arrival);
                    });
}

void ScionIpGateway::add_rule(IpPrefix prefix, dataplane::Address remote) {
  rules_.emplace_back(prefix, remote);
}

Status ScionIpGateway::send_ip(const IpPacket& packet) {
  const dataplane::Address* remote = nullptr;
  for (const auto& [prefix, sig] : rules_) {
    if (prefix.contains(packet.dst_ip)) {
      remote = &sig;
      break;
    }
  }
  if (remote == nullptr) {
    no_rule_->inc();
    return Error{Errc::kNotFound, "no SIG traffic rule for destination"};
  }

  dataplane::ScionPacket tunnel;
  tunnel.dst = *remote;
  tunnel.next_hdr = dataplane::kProtoUdp;
  if (remote->ia != stack_.address().ia) {
    auto paths = policy_.apply(daemon_.paths(remote->ia));
    std::erase_if(paths, [this](const controlplane::Path& path) {
      return !net_.path_usable(path);
    });
    if (paths.empty()) {
      send_failures_->inc();
      return Error{Errc::kUnreachable,
                   "no usable path to remote SIG " + remote->to_string()};
    }
    tunnel.path = paths.front().dataplane_path;
  } else {
    tunnel.path_type = dataplane::PathType::kEmpty;
  }
  dataplane::UdpDatagram datagram;
  datagram.src_port = kSigPort;
  datagram.dst_port = kSigPort;
  datagram.data = packet.serialize();
  tunnel.payload = datagram.serialize();
  const auto status = stack_.send(std::move(tunnel));
  if (!status.ok()) {
    send_failures_->inc();
    return status;
  }
  encapsulated_->inc();
  return {};
}

ScionIpGateway::Stats ScionIpGateway::stats() const {
  return Stats{encapsulated_->value(), decapsulated_->value(),
               no_rule_->value(), send_failures_->value()};
}

void ScionIpGateway::on_tunnel_packet(const dataplane::ScionPacket&,
                                      const dataplane::UdpDatagram& datagram,
                                      SimTime arrival) {
  auto packet = IpPacket::parse(datagram.data);
  if (!packet) return;
  decapsulated_->inc();
  if (delivery_) delivery_(packet.value(), arrival);
}

}  // namespace sciera::sig
