// Runtime invariant checking with per-category violation counters. The
// macro family backs the correctness-tooling layer: load-bearing
// invariants (event-queue monotonicity, MAC chains, TRC validity) are
// guarded by SCIERA_CHECK / SCIERA_DCHECK, and every failure is recorded
// in a process-wide registry so campaigns and tests can audit how often
// each category fired. Expected, adversary-driven rejections (a bad MAC
// on an incoming packet is not a program bug) are recorded with
// count_violation() without any fatal side effect.
//
//   SCIERA_CHECK(cond, category)   always compiled in; on failure records
//                                  the category and, in the default kAbort
//                                  mode, aborts the process.
//   SCIERA_DCHECK(cond, category)  same, but compiled out in NDEBUG builds
//                                  (mirrors assert) — for per-event checks
//                                  too hot for release forwarding paths.
//   sciera::count_violation(cat)   non-fatal audit counter bump.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace sciera {

// What a failed SCIERA_CHECK does after recording its category. Tests flip
// to kCount to observe counters without dying; production keeps kAbort so
// a violated invariant can never silently corrupt an experiment.
enum class CheckFailMode { kAbort, kCount };

class CheckRegistry {
 public:
  static CheckRegistry& instance();

  // Records one violation of `category` (thread-safe).
  void record(std::string_view category);

  [[nodiscard]] std::uint64_t count(std::string_view category) const;
  [[nodiscard]] std::uint64_t total() const;
  // Sorted (category, count) pairs — stable across runs for audit digests.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> snapshot()
      const;
  void reset();

  void set_fail_mode(CheckFailMode mode) { fail_mode_ = mode; }
  [[nodiscard]] CheckFailMode fail_mode() const { return fail_mode_; }

 private:
  CheckRegistry() = default;
  mutable sciera::Mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counts_
      SCIERA_GUARDED_BY(mutex_);
  // Flipped only by single-threaded test setup, read on the hot failure
  // path — deliberately outside the mutex.
  CheckFailMode fail_mode_ = CheckFailMode::kAbort;
};

// Non-fatal audit counter: records that an expected-but-noteworthy
// condition occurred (dropped MAC, rejected TRC, clamped schedule time).
void count_violation(std::string_view category);

namespace detail {
// Records the failure and applies the registry's fail mode. Never inlined
// into the (cold) failure branch's caller.
void check_failed(std::string_view category, const char* expr,
                  const char* file, int line);
}  // namespace detail

}  // namespace sciera

#define SCIERA_CHECK(cond, category)                                       \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      ::sciera::detail::check_failed(category, #cond, __FILE__, __LINE__); \
    }                                                                      \
  } while (0)

#if !defined(NDEBUG) || defined(SCIERA_FORCE_DCHECKS)
#define SCIERA_DCHECK_IS_ON 1
#else
#define SCIERA_DCHECK_IS_ON 0
#endif

#if SCIERA_DCHECK_IS_ON
#define SCIERA_DCHECK(cond, category) SCIERA_CHECK(cond, category)
#else
#define SCIERA_DCHECK(cond, category) \
  do {                                \
    if (false) {                      \
      (void)(cond);                   \
    }                                 \
  } while (0)
#endif
