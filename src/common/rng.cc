#include "common/rng.h"

#include <cmath>

namespace sciera {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t hash_label(std::string_view label) {
  // FNV-1a 64-bit.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : state_) s = splitmix64(x);
}

Rng::Rng(std::uint64_t seed, std::string_view stream_label)
    : Rng(seed ^ hash_label(stream_label)) {}

std::uint64_t Rng::next_u64() {
  // xoshiro256**
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  have_spare_normal_ = true;
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::exponential(double mean) {
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

double Rng::lognormal_median(double median, double sigma) {
  return median * std::exp(normal(0.0, sigma));
}

bool Rng::chance(double probability) {
  return next_double() < probability;
}

Rng Rng::fork(std::string_view stream_label) {
  return Rng{next_u64() ^ hash_label(stream_label)};
}

}  // namespace sciera
