// Retry/backoff/degradation primitives shared by every RPC-ish client in
// the stack (daemon path fetches, control-service consumers). Centralized
// so the policy is uniform and auditable: sciera_lint bans ad-hoc
// retry loops outside src/chaos/ and this helper (raw-retry-loop).
//
// Everything here is driven by the simulation clock and an explicit Rng:
// backoff jitter is deterministic per seed, and circuit-breaker windows
// are sim-time spans, so resilience behaviour replays bit-identically
// under simnet::audit_determinism().
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/time.h"

namespace sciera {

// Bounded exponential backoff with deterministic, Rng-driven jitter.
// Attempt numbering: attempt 1 is the first retry (the initial try has no
// delay). delay(n) grows geometrically from `initial`, is clamped at
// `max_delay`, and is then spread by +/- jitter_frac uniformly.
struct BackoffPolicy {
  Duration initial = 200 * kMillisecond;
  double multiplier = 2.0;
  Duration max_delay = 5 * kSecond;
  // Total tries including the initial one; retries stop after this many.
  std::size_t max_attempts = 4;
  // Fraction of the nominal delay used as a +/- uniform jitter band.
  double jitter_frac = 0.2;

  // Delay before retry number `attempt` (>= 1), jittered from `rng`.
  // Always returns at least 1ns so a retry never lands on the same tick
  // as the failure that triggered it.
  [[nodiscard]] Duration delay(std::size_t attempt, Rng& rng) const;
};

// Per-destination circuit breaker: after `failure_threshold` consecutive
// failures the breaker opens for `open_for` of simulated time and callers
// should fail fast (degrade) instead of hammering a dead service. Once
// the window elapses the breaker is half-open: the next request is let
// through as a probe; success closes the breaker, failure re-opens it.
class CircuitBreaker {
 public:
  struct Config {
    std::uint32_t failure_threshold = 3;
    Duration open_for = 10 * kSecond;
  };

  CircuitBreaker() : CircuitBreaker(Config{}) {}
  explicit CircuitBreaker(Config config) : config_(config) {}

  // Whether a request may be issued now (closed, or half-open probe).
  [[nodiscard]] bool allow(SimTime now) const {
    return !open_ || now >= open_until_;
  }
  [[nodiscard]] bool is_open(SimTime now) const { return !allow(now); }

  void record_success() {
    consecutive_failures_ = 0;
    open_ = false;
  }

  void record_failure(SimTime now);

  // Times the breaker transitioned closed/half-open -> open.
  [[nodiscard]] std::uint64_t times_opened() const { return times_opened_; }

 private:
  Config config_;
  std::uint32_t consecutive_failures_ = 0;
  bool open_ = false;
  SimTime open_until_ = 0;
  std::uint64_t times_opened_ = 0;
};

}  // namespace sciera
