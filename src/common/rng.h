// Deterministic pseudo-random number generation (xoshiro256**, seeded via
// splitmix64). Every stochastic component takes an explicit Rng so whole
// simulation campaigns replay bit-identically from a seed.
#pragma once

#include <cstdint>
#include <string_view>

namespace sciera {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5C1E2A5EED);
  // Derives a seed from a label, for independent per-component streams.
  Rng(std::uint64_t seed, std::string_view stream_label);

  std::uint64_t next_u64();
  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);
  // Uniform double in [0, 1).
  double next_double();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Standard normal via Box-Muller.
  double normal(double mean = 0.0, double stddev = 1.0);
  // Exponential with the given mean.
  double exponential(double mean);
  // Log-normal parameterized by the median and a multiplicative sigma,
  // convenient for latency jitter ("median x, occasionally several x").
  double lognormal_median(double median, double sigma);
  // Bernoulli trial.
  bool chance(double probability);

  // Derives a child RNG whose stream is independent of this one.
  Rng fork(std::string_view stream_label);

 private:
  std::uint64_t state_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace sciera
