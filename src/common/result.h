// Lightweight Result<T> error-handling type (std::expected is not available
// on this toolchain's libstdc++). Errors carry a category and a message;
// propagation is explicit, following the Core Guidelines advice to make
// failure paths visible in interfaces (I.10, E.x).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace sciera {

enum class Errc {
  kInvalidArgument,
  kNotFound,
  kParseError,
  kCryptoError,
  kVerificationFailed,
  kExpired,
  kUnreachable,
  kTimeout,
  kResourceExhausted,
  kInternal,
};

[[nodiscard]] constexpr const char* errc_name(Errc code) {
  switch (code) {
    case Errc::kInvalidArgument: return "invalid_argument";
    case Errc::kNotFound: return "not_found";
    case Errc::kParseError: return "parse_error";
    case Errc::kCryptoError: return "crypto_error";
    case Errc::kVerificationFailed: return "verification_failed";
    case Errc::kExpired: return "expired";
    case Errc::kUnreachable: return "unreachable";
    case Errc::kTimeout: return "timeout";
    case Errc::kResourceExhausted: return "resource_exhausted";
    case Errc::kInternal: return "internal";
  }
  return "unknown";
}

struct Error {
  Errc code = Errc::kInternal;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return std::string{errc_name(code)} + ": " + message;
  }
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Result(Error error) : state_(std::in_place_index<1>, std::move(error)) {}
  Result(Errc code, std::string message)
      : state_(std::in_place_index<1>, Error{code, std::move(message)}) {}

  [[nodiscard]] bool ok() const { return state_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(state_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(state_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<0>(std::move(state_));
  }
  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<1>(state_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(state_) : std::move(fallback);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, Error> state_;
};

// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}
  Status(Errc code, std::string message)
      : error_{code, std::move(message)}, failed_(true) {}

  static Status ok_status() { return Status{}; }

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const Error& error() const {
    assert(failed_);
    return error_;
  }

 private:
  Error error_{};
  bool failed_ = false;
};

}  // namespace sciera
