#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace sciera {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace sciera
