#include "common/backoff.h"

#include <algorithm>

namespace sciera {

Duration BackoffPolicy::delay(std::size_t attempt, Rng& rng) const {
  if (attempt == 0) return kNanosecond;
  double nominal = static_cast<double>(initial);
  for (std::size_t i = 1; i < attempt; ++i) nominal *= multiplier;
  nominal = std::min(nominal, static_cast<double>(max_delay));
  if (jitter_frac > 0.0) {
    nominal *= rng.uniform(1.0 - jitter_frac, 1.0 + jitter_frac);
  }
  return std::max<Duration>(static_cast<Duration>(nominal), kNanosecond);
}

void CircuitBreaker::record_failure(SimTime now) {
  if (open_) {
    // Inside the window a failure changes nothing; a failed half-open
    // probe re-opens the window from now.
    if (now >= open_until_) {
      open_until_ = now + config_.open_for;
      ++times_opened_;
    }
    return;
  }
  ++consecutive_failures_;
  if (consecutive_failures_ >= config_.failure_threshold) {
    open_ = true;
    open_until_ = now + config_.open_for;
    ++times_opened_;
  }
}

}  // namespace sciera
