#include "common/log.h"

#include <cstdio>

namespace sciera {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug: tag = "DBG"; break;
    case LogLevel::kInfo: tag = "INF"; break;
    case LogLevel::kWarn: tag = "WRN"; break;
    case LogLevel::kError: tag = "ERR"; break;
    case LogLevel::kOff: return;
  }
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", tag,
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace sciera
