// Minimal leveled logger. Components log through a shared sink; tests and
// benches keep the default level at kWarn so output stays readable.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace sciera {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, std::string_view component,
             std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
};

// Stream-style log statement that only formats when the level is enabled.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component),
        enabled_(Logger::instance().enabled(level)) {}
  ~LogLine() {
    if (enabled_) Logger::instance().write(level_, component_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  bool enabled_;
  std::ostringstream stream_;
};

inline LogLine log_debug(std::string_view c) { return {LogLevel::kDebug, c}; }
inline LogLine log_info(std::string_view c) { return {LogLevel::kInfo, c}; }
inline LogLine log_warn(std::string_view c) { return {LogLevel::kWarn, c}; }
inline LogLine log_error(std::string_view c) { return {LogLevel::kError, c}; }

}  // namespace sciera
