// Small string helpers used by the topology parser and chart renderers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sciera {

// Splits on a delimiter; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text,
                                                  char delim);
// Splits on runs of whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view text);
[[nodiscard]] std::string_view trim(std::string_view text);
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);
// printf-style formatting into a std::string.
[[nodiscard]] std::string strformat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace sciera
