// Simulated-time primitives. All timestamps in the simulator, control
// plane, and measurement campaign are nanoseconds since the simulation
// epoch. Wall-clock is never consulted: runs are fully deterministic.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace sciera {

// Nanoseconds since simulation epoch.
using SimTime = std::int64_t;
// Nanosecond duration.
using Duration = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1'000 * kNanosecond;
constexpr Duration kMillisecond = 1'000 * kMicrosecond;
constexpr Duration kSecond = 1'000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;
constexpr Duration kDay = 24 * kHour;

constexpr double to_ms(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr Duration from_ms(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}

// Renders "12d 03:04:05.678" style timestamps for logs and charts.
[[nodiscard]] inline std::string format_time(SimTime t) {
  const std::int64_t total_ms = t / kMillisecond;
  const std::int64_t ms = total_ms % 1000;
  const std::int64_t s = (total_ms / 1000) % 60;
  const std::int64_t m = (total_ms / 60'000) % 60;
  const std::int64_t h = (total_ms / 3'600'000) % 24;
  const std::int64_t d = total_ms / 86'400'000;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lldd %02lld:%02lld:%02lld.%03lld",
                static_cast<long long>(d), static_cast<long long>(h),
                static_cast<long long>(m), static_cast<long long>(s),
                static_cast<long long>(ms));
  return buf;
}

}  // namespace sciera
