// SCION addressing primitives: ISD numbers, AS numbers, and the combined
// ISD-AS identifier used throughout the control and data planes.
//
// Textual forms follow the SCION conventions used in the paper:
//   * BGP-style AS numbers render as decimal:          "71-559"
//   * SCION-style AS numbers render as 3 hex groups:   "71-2:0:3b"
// An AS number is 48 bits; values <= 2^32-1 are considered "BGP-style" and
// formatted in decimal, larger values use the colon-separated hex form.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace sciera {

using Isd = std::uint16_t;

// 48-bit AS number stored in the low bits of a uint64.
class As {
 public:
  static constexpr std::uint64_t kMaxValue = (std::uint64_t{1} << 48) - 1;
  // Largest AS number that formats in decimal (BGP-style).
  static constexpr std::uint64_t kMaxBgpStyle = 0xFFFF'FFFF;

  constexpr As() = default;
  constexpr explicit As(std::uint64_t value) : value_(value & kMaxValue) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;

  // Parses either decimal ("559") or colon-separated hex ("2:0:3b").
  static std::optional<As> parse(std::string_view text);

  friend constexpr auto operator<=>(As, As) = default;

 private:
  std::uint64_t value_ = 0;
};

// Combined ISD-AS identifier, e.g. "71-2:0:3b".
class IsdAs {
 public:
  constexpr IsdAs() = default;
  constexpr IsdAs(Isd isd, As as) : isd_(isd), as_(as) {}

  [[nodiscard]] constexpr Isd isd() const { return isd_; }
  [[nodiscard]] constexpr As as() const { return as_; }
  [[nodiscard]] constexpr bool is_zero() const {
    return isd_ == 0 && as_.value() == 0;
  }
  [[nodiscard]] std::string to_string() const;

  // Packs to the 64-bit wire representation: ISD in the top 16 bits.
  [[nodiscard]] constexpr std::uint64_t packed() const {
    return (std::uint64_t{isd_} << 48) | as_.value();
  }
  static constexpr IsdAs from_packed(std::uint64_t packed) {
    return IsdAs{static_cast<Isd>(packed >> 48), As{packed & As::kMaxValue}};
  }

  // Parses "71-2:0:3b" / "64-559".
  static std::optional<IsdAs> parse(std::string_view text);

  friend constexpr auto operator<=>(IsdAs, IsdAs) = default;

 private:
  Isd isd_ = 0;
  As as_{};
};

// AS-scoped interface identifier; 0 is reserved to mean "no interface".
using IfaceId = std::uint16_t;

// Globally unique interface identifier, used for the path-disjointness
// metric of Section 5.4 ("we combine the AS-unique interface identifiers
// with SCION's ISD-AS numbers to generate globally unique interface IDs").
struct GlobalIfaceId {
  IsdAs ia;
  IfaceId iface = 0;

  friend constexpr auto operator<=>(const GlobalIfaceId&,
                                    const GlobalIfaceId&) = default;
  [[nodiscard]] std::string to_string() const;
};

}  // namespace sciera

template <>
struct std::hash<sciera::IsdAs> {
  std::size_t operator()(const sciera::IsdAs& ia) const noexcept {
    return std::hash<std::uint64_t>{}(ia.packed());
  }
};

template <>
struct std::hash<sciera::GlobalIfaceId> {
  std::size_t operator()(const sciera::GlobalIfaceId& gid) const noexcept {
    std::uint64_t mix = gid.ia.packed() * 0x9E3779B97F4A7C15ULL + gid.iface;
    mix ^= mix >> 29;
    return static_cast<std::size_t>(mix);
  }
};
