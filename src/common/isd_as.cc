#include "common/isd_as.h"

#include <array>
#include <charconv>

namespace sciera {
namespace {

std::optional<std::uint64_t> parse_u64(std::string_view text, int base) {
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value, base);
  if (ec != std::errc{} || ptr != end || text.empty()) return std::nullopt;
  return value;
}

}  // namespace

std::string As::to_string() const {
  if (value_ <= kMaxBgpStyle) return std::to_string(value_);
  // Three 16-bit groups in lower-case hex without leading zeros per group.
  std::array<std::uint16_t, 3> groups = {
      static_cast<std::uint16_t>(value_ >> 32),
      static_cast<std::uint16_t>(value_ >> 16),
      static_cast<std::uint16_t>(value_),
  };
  std::string out;
  for (int i = 0; i < 3; ++i) {
    if (i > 0) out.push_back(':');
    char buf[5];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, groups[i], 16);
    (void)ec;
    out.append(buf, ptr);
  }
  return out;
}

std::optional<As> As::parse(std::string_view text) {
  if (text.find(':') == std::string_view::npos) {
    auto value = parse_u64(text, 10);
    if (!value || *value > kMaxBgpStyle) return std::nullopt;
    return As{*value};
  }
  std::uint64_t value = 0;
  int groups = 0;
  while (groups < 3) {
    const auto colon = text.find(':');
    const std::string_view group =
        colon == std::string_view::npos ? text : text.substr(0, colon);
    auto part = parse_u64(group, 16);
    if (!part || *part > 0xFFFF) return std::nullopt;
    value = (value << 16) | *part;
    ++groups;
    if (colon == std::string_view::npos) {
      text = {};
      break;
    }
    text.remove_prefix(colon + 1);
  }
  if (groups != 3 || !text.empty()) return std::nullopt;
  return As{value};
}

std::string IsdAs::to_string() const {
  return std::to_string(isd_) + "-" + as_.to_string();
}

std::optional<IsdAs> IsdAs::parse(std::string_view text) {
  const auto dash = text.find('-');
  if (dash == std::string_view::npos) return std::nullopt;
  auto isd = parse_u64(text.substr(0, dash), 10);
  if (!isd || *isd > 0xFFFF) return std::nullopt;
  auto as = As::parse(text.substr(dash + 1));
  if (!as) return std::nullopt;
  return IsdAs{static_cast<Isd>(*isd), *as};
}

std::string GlobalIfaceId::to_string() const {
  return ia.to_string() + "#" + std::to_string(iface);
}

}  // namespace sciera
