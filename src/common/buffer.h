// Bounds-checked big-endian byte readers/writers for wire formats.
// All SCION header serialization goes through these; out-of-bounds reads
// surface as Result errors rather than UB (Core Guidelines ES.x / SL.con).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace sciera {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

[[nodiscard]] std::string to_hex(BytesView bytes);
[[nodiscard]] Result<Bytes> from_hex(std::string_view hex);
[[nodiscard]] Bytes bytes_of(std::string_view text);

// Serializer appending big-endian fields to an owned buffer.
class Writer {
 public:
  Writer() = default;
  // Adopts `reuse` as the output buffer: contents are discarded but the
  // allocation is kept, so pooled buffers (dataplane::FramePool) serialize
  // without a fresh heap allocation. Retrieve it back with take().
  explicit Writer(Bytes reuse) : buf_(std::move(reuse)) { buf_.clear(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void raw(BytesView bytes) { buf_.insert(buf_.end(), bytes.begin(), bytes.end()); }
  void str(std::string_view text) {
    // Length-prefixed string, for canonical signing payloads.
    u32(static_cast<std::uint32_t>(text.size()));
    buf_.insert(buf_.end(), text.begin(), text.end());
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }

  // Patches a previously written big-endian u16 at an absolute offset.
  void patch_u16(std::size_t offset, std::uint16_t v) {
    buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
    buf_.at(offset + 1) = static_cast<std::uint8_t>(v);
  }

 private:
  Bytes buf_;
};

// Bounds-checked big-endian reader over a non-owned view.
class Reader {
 public:
  explicit Reader(BytesView view) : view_(view) {}

  [[nodiscard]] std::size_t remaining() const { return view_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

  Result<std::uint8_t> u8() {
    if (remaining() < 1) return overflow(1);
    return view_[pos_++];
  }
  Result<std::uint16_t> u16() {
    if (remaining() < 2) return overflow(2);
    std::uint16_t v = static_cast<std::uint16_t>(view_[pos_] << 8) |
                      view_[pos_ + 1];
    pos_ += 2;
    return v;
  }
  Result<std::uint32_t> u32() {
    if (remaining() < 4) return overflow(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | view_[pos_ + i];
    pos_ += 4;
    return v;
  }
  Result<std::uint64_t> u64() {
    if (remaining() < 8) return overflow(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | view_[pos_ + i];
    pos_ += 8;
    return v;
  }
  Result<Bytes> raw(std::size_t n) {
    if (remaining() < n) return overflow(n);
    Bytes out(view_.begin() + static_cast<std::ptrdiff_t>(pos_),
              view_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  // Zero-copy variant of raw(): the returned view aliases the reader's
  // underlying buffer and is only valid while that buffer lives. The
  // dataplane parse path copies out of it into reused storage, which is
  // what keeps per-packet parsing allocation-free.
  Result<BytesView> raw_view(std::size_t n) {
    if (remaining() < n) return overflow(n);
    BytesView out = view_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  Result<std::string> str() {
    auto len = u32();
    if (!len) return len.error();
    auto body = raw(*len);
    if (!body) return body.error();
    return std::string{body->begin(), body->end()};
  }

 private:
  template <typename T = Bytes>
  Error overflow(std::size_t want) const {
    return Error{Errc::kParseError,
                 "buffer underrun: want " + std::to_string(want) +
                     " bytes, have " + std::to_string(remaining())};
  }

  BytesView view_;
  std::size_t pos_ = 0;
};

}  // namespace sciera
