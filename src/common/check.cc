#include "common/check.h"

#include <cstdlib>

#include "common/log.h"

namespace sciera {

CheckRegistry& CheckRegistry::instance() {
  static CheckRegistry registry;
  return registry;
}

void CheckRegistry::record(std::string_view category) {
  const sciera::MutexLock lock(mutex_);
  auto it = counts_.find(category);
  if (it == counts_.end()) {
    counts_.emplace(std::string{category}, 1);
  } else {
    ++it->second;
  }
}

std::uint64_t CheckRegistry::count(std::string_view category) const {
  const sciera::MutexLock lock(mutex_);
  const auto it = counts_.find(category);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t CheckRegistry::total() const {
  const sciera::MutexLock lock(mutex_);
  std::uint64_t sum = 0;
  for (const auto& [category, n] : counts_) sum += n;
  return sum;
}

std::vector<std::pair<std::string, std::uint64_t>> CheckRegistry::snapshot()
    const {
  const sciera::MutexLock lock(mutex_);
  return {counts_.begin(), counts_.end()};
}

void CheckRegistry::reset() {
  const sciera::MutexLock lock(mutex_);
  counts_.clear();
}

void count_violation(std::string_view category) {
  CheckRegistry::instance().record(category);
}

namespace detail {

void check_failed(std::string_view category, const char* expr,
                  const char* file, int line) {
  auto& registry = CheckRegistry::instance();
  registry.record(category);
  log_error("check") << "invariant violated [" << category << "] " << expr
                     << " at " << file << ":" << line;
  if (registry.fail_mode() == CheckFailMode::kAbort) std::abort();
}

}  // namespace detail

}  // namespace sciera
