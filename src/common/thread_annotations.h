// Clang thread-safety annotations for SCIERA's shared mutable state, plus
// an annotated Mutex/MutexLock pair the analysis can see through.
//
// The simulator is single-threaded today, but the sharded parallel core
// (ROADMAP item 2) will run one event loop per shard with cross-shard
// channels. These annotations are the static floor for that refactor:
//
//   * Real locks (obs::MetricsRegistry, obs::FlightRecorder) use
//     sciera::Mutex + sciera::MutexLock so Clang's -Wthread-safety proves
//     every access to SCIERA_GUARDED_BY state happens under the lock.
//     std::mutex + std::lock_guard are NOT annotated under libstdc++, so
//     direct std::mutex members are rejected by sciera_analyze (rule
//     std-mutex-member) — the analysis cannot see through them.
//
//   * Thread-affine state (Simulator, Link, FramePool, ChaosEngine) is
//     guarded by the SCIERA_SIM_THREAD capability: a virtual "role" lock
//     representing "the thread driving this simulation". Methods entering
//     the affine state assert the role via sim_thread_role().assert_held().
//     Today that assertion is a compile-time marker only; when shards land
//     it becomes one role instance per shard and the assert gains a real
//     thread-id check, at which point -Wthread-safety rejects any code
//     path that touches a shard's state without holding its role.
//
// The macros map 1:1 onto Clang's capability attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) and expand to
// nothing on compilers without the attribute (GCC builds are unaffected;
// the Clang CI flavor enforces them via -Werror=thread-safety-analysis,
// see cmake/Sanitizers.cmake).
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SCIERA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SCIERA_THREAD_ANNOTATION
#define SCIERA_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// A class that is a capability: its instances can be "held" by a thread.
#define SCIERA_CAPABILITY(name) SCIERA_THREAD_ANNOTATION(capability(name))

// Data members: may only be read/written while holding `x`.
#define SCIERA_GUARDED_BY(x) SCIERA_THREAD_ANNOTATION(guarded_by(x))
// Pointer members: the pointed-to data is guarded (the pointer itself not).
#define SCIERA_PT_GUARDED_BY(x) SCIERA_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: caller must hold / must not hold the capability.
#define SCIERA_REQUIRES(...) \
  SCIERA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SCIERA_EXCLUDES(...) \
  SCIERA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Functions that acquire / release the capability (lock() / unlock()).
#define SCIERA_ACQUIRE(...) \
  SCIERA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SCIERA_RELEASE(...) \
  SCIERA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// RAII types whose constructor acquires and destructor releases.
#define SCIERA_SCOPED_CAPABILITY SCIERA_THREAD_ANNOTATION(scoped_lockable)

// Runtime assertion that the capability is held (no acquire/release edge);
// satisfies the analysis at thread-affine entry points without cascading
// SCIERA_REQUIRES through every caller.
#define SCIERA_ASSERT_CAPABILITY(x) \
  SCIERA_THREAD_ANNOTATION(assert_capability(x))

// Return value is a reference to the named capability (lets GUARDED_BY
// refer to a capability reachable through an accessor).
#define SCIERA_RETURN_CAPABILITY(x) SCIERA_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for functions the analysis cannot model. Every use needs a
// justification comment.
#define SCIERA_NO_THREAD_SAFETY_ANALYSIS \
  SCIERA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sciera {

// std::mutex wrapped as an annotated capability. Same cost, same
// semantics; the wrapper exists purely so Clang can follow lock/unlock.
class SCIERA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SCIERA_ACQUIRE() { mutex_.lock(); }
  void unlock() SCIERA_RELEASE() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
};

// Annotated RAII guard over sciera::Mutex (std::lock_guard is opaque to
// the analysis under libstdc++).
class SCIERA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SCIERA_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SCIERA_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

// Virtual capability for thread-affine (not lock-protected) state: holding
// it means "this thread is the one driving the simulation". There is one
// global role today; the shard refactor will mint one per shard.
class SCIERA_CAPABILITY("role") ThreadRole {
 public:
  // Marks the calling context as holding the role. No runtime cost yet;
  // gains a thread-id check when the parallel core lands.
  void assert_held() const SCIERA_ASSERT_CAPABILITY(this) {}
};

// The single simulation-thread role (see ThreadRole). An inline variable
// rather than an accessor so it is a plain capability expression the
// analysis can name in SCIERA_GUARDED_BY.
inline ThreadRole sim_thread_role;

}  // namespace sciera
